//! Flat (whole-structure) solves of guarded interconnect trees.
//!
//! Section IV of the paper compares the loop inductance of a whole tree of
//! three-wire (ground–signal–ground) segments, extracted in one shot, with
//! the series/parallel combination of independently extracted segment loop
//! inductances (Table I: 3.57 % and 1.55 % discrepancy). [`FlatTreeSolver`]
//! produces both numbers:
//!
//! * [`FlatTreeSolver::flat_loop_inductance`] materializes every segment's
//!   three bars, couples **all** parallel bar pairs across the whole tree,
//!   shorts every leaf's signal to its local ground (sink nodes merged with
//!   ground, as the paper prescribes), and reads the driving-point
//!   inductance at the root port — the RI3-equivalent reference;
//! * [`FlatTreeSolver::cascaded_loop_inductance`] extracts each segment in
//!   isolation and combines series/parallel, the paper's efficient method.

use crate::network::{AcNetwork, Branch};
use crate::partial::{dc_resistance, mutual_partial, self_partial};
use crate::solver::{Conductor, PartialSystem};
use crate::{loop_l, MeshSpec, PeecError, Result};
use rlcx_geom::{Axis, Bar, Point3, SegmentTree};

/// Solver for trees of three-wire guarded segments.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTreeSolver {
    signal_width: f64,
    ground_width: f64,
    spacing: f64,
    thickness: f64,
    z_bottom: f64,
    rho: f64,
    frequency: f64,
}

impl FlatTreeSolver {
    /// Creates a solver for segments with the given cross-section (µm) and
    /// metal resistivity (Ω·m). Defaults: z = 10 µm, 3.2 GHz significant
    /// frequency.
    ///
    /// # Errors
    ///
    /// Returns [`PeecError::InvalidParameter`] for non-positive dimensions.
    pub fn new(
        signal_width: f64,
        ground_width: f64,
        spacing: f64,
        thickness: f64,
        rho: f64,
    ) -> Result<Self> {
        for (what, v) in [
            ("signal width", signal_width),
            ("ground width", ground_width),
            ("spacing", spacing),
            ("thickness", thickness),
            ("resistivity", rho),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PeecError::InvalidParameter {
                    what: format!("{what} must be positive, got {v}"),
                });
            }
        }
        Ok(FlatTreeSolver {
            signal_width,
            ground_width,
            spacing,
            thickness,
            z_bottom: 10.0,
            rho,
            frequency: 3.2e9,
        })
    }

    /// Sets the extraction frequency (Hz).
    #[must_use]
    pub fn frequency(mut self, f: f64) -> Self {
        self.frequency = f;
        self
    }

    /// The extraction frequency (Hz).
    pub fn extraction_frequency(&self) -> f64 {
        self.frequency
    }

    /// The three bars (signal, ground−, ground+) of one edge of `tree`,
    /// together with the branch sign (+1 when the edge runs toward
    /// increasing coordinate).
    fn edge_bars(&self, tree: &SegmentTree, e: usize) -> (Bar, Bar, Bar, f64) {
        let edge = tree.edges()[e];
        let a = tree.node(edge.from);
        let b = tree.node(edge.to);
        let axis = tree.edge_axis(e);
        let (alo, ahi, center, sign) = match axis {
            Axis::X => (
                a.x.min(b.x),
                a.x.max(b.x),
                a.y,
                if b.x > a.x { 1.0 } else { -1.0 },
            ),
            Axis::Y => (
                a.y.min(b.y),
                a.y.max(b.y),
                a.x,
                if b.y > a.y { 1.0 } else { -1.0 },
            ),
        };
        let len = ahi - alo;
        let make = |t_center: f64, w: f64| {
            let origin = match axis {
                Axis::X => Point3::new(alo, t_center - w / 2.0, self.z_bottom),
                Axis::Y => Point3::new(t_center - w / 2.0, alo, self.z_bottom),
            };
            Bar::new(origin, axis, len, w, self.thickness).expect("validated dimensions")
        };
        let off = self.signal_width / 2.0 + self.spacing + self.ground_width / 2.0;
        (
            make(center, self.signal_width),
            make(center - off, self.ground_width),
            make(center + off, self.ground_width),
            sign,
        )
    }

    /// Loop inductance (H) of the whole tree solved flat: all segments, all
    /// mutual couplings, leaves shorted signal-to-ground, port at the root.
    ///
    /// # Errors
    ///
    /// Propagates network assembly/solve errors; fails for a root-only tree.
    pub fn flat_loop_inductance(&self, tree: &SegmentTree) -> Result<f64> {
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        self.root_port_network(tree)?
            .driving_point_inductance(0, tree.node_count(), omega)
    }

    /// Driving-point impedance (Ω) at the root port of the flat tree solve.
    ///
    /// # Errors
    ///
    /// Propagates network assembly/solve errors.
    pub fn flat_port_impedance(&self, tree: &SegmentTree) -> Result<rlcx_numeric::Complex> {
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        self.root_port_network(tree)?
            .driving_point_impedance(0, tree.node_count(), omega)
    }

    fn root_port_network(&self, tree: &SegmentTree) -> Result<AcNetwork> {
        if tree.edges().is_empty() {
            return Err(PeecError::InvalidParameter {
                what: "tree has no segments".into(),
            });
        }
        let n = tree.node_count();
        // Signal nodes are 0..n, ground nodes n..2n.
        let mut net = AcNetwork::new(2 * n);
        // Bars and signs per impedance branch, for mutual assembly.
        let mut bar_of: Vec<(Bar, f64)> = Vec::new();
        for e in 0..tree.edges().len() {
            let edge = tree.edges()[e];
            let (sig, g1, g2, sign) = self.edge_bars(tree, e);
            for (bar, from, to) in [
                (sig, edge.from, edge.to),
                (g1, n + edge.from, n + edge.to),
                (g2, n + edge.from, n + edge.to),
            ] {
                net.add_branch(Branch {
                    from,
                    to,
                    r: dc_resistance(&bar, self.rho),
                    l: self_partial(&bar),
                })?;
                bar_of.push((bar, sign));
            }
        }
        // Mutual couplings between every parallel pair.
        for i in 0..bar_of.len() {
            for j in (i + 1)..bar_of.len() {
                let (bi, si) = &bar_of[i];
                let (bj, sj) = &bar_of[j];
                let m = mutual_partial(bi, bj);
                if m != 0.0 {
                    net.add_mutual(i, j, si * sj * m)?;
                }
            }
        }
        // Merge each sink (leaf) with its local ground node.
        for leaf in tree.leaves() {
            net.add_branch(Branch {
                from: leaf,
                to: n + leaf,
                r: 0.0,
                l: 0.0,
            })?;
        }
        Ok(net)
    }

    /// Loop inductance (H) of one isolated straight segment of the given
    /// length (µm) — the quantity the paper tabulates per segment.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn segment_loop_inductance(&self, length: f64) -> Result<f64> {
        let mut sys = PartialSystem::new();
        let off = self.signal_width / 2.0 + self.spacing + self.ground_width / 2.0;
        for (c, w) in [
            (0.0, self.signal_width),
            (-off, self.ground_width),
            (off, self.ground_width),
        ] {
            let bar = Bar::new(
                Point3::new(0.0, c - w / 2.0, self.z_bottom),
                Axis::X,
                length,
                w,
                self.thickness,
            )?;
            sys.push(Conductor::new(bar, self.rho)?);
        }
        let z = sys.impedance_at(self.frequency, MeshSpec::single())?;
        let z_loop = loop_l::loop_impedance(&z, &[0], &[1, 2])?;
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        Ok(z_loop[(0, 0)].im / omega)
    }

    /// Loop inductance (H) of the tree by the paper's linear-cascading rule:
    /// per-segment loop inductances combined in series along paths and in
    /// parallel across branches.
    ///
    /// # Errors
    ///
    /// Propagates [`FlatTreeSolver::segment_loop_inductance`] errors.
    pub fn cascaded_loop_inductance(&self, tree: &SegmentTree) -> Result<f64> {
        let per_edge: Vec<f64> = (0..tree.edges().len())
            .map(|e| self.segment_loop_inductance(tree.edge_length(e)))
            .collect::<Result<_>>()?;
        Ok(tree.cascaded_inductance(&|e| per_edge[e]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;

    fn solver() -> FlatTreeSolver {
        // The paper's Figure 6 cross-section: equal 1.2 µm signal and ground
        // widths. 0.6 µm spacing, 0.8 µm thick aluminum-era metal.
        FlatTreeSolver::new(1.2, 1.2, 0.6, 0.8, RHO_COPPER).unwrap()
    }

    #[test]
    fn straight_chain_flat_equals_segment_within_coupling() {
        // One straight 400 µm run split into two 200 µm edges: flat solve
        // couples the halves, cascade does not; flat must exceed cascade by
        // a few percent (the underestimation the paper discusses).
        let mut tree = SegmentTree::new(0.0, 0.0);
        let b = tree.add_node(0, 200.0, 0.0).unwrap();
        tree.add_node(b, 400.0, 0.0).unwrap();
        let s = solver();
        let flat = s.flat_loop_inductance(&tree).unwrap();
        let cascaded = s.cascaded_loop_inductance(&tree).unwrap();
        assert!(flat > 0.0 && cascaded > 0.0);
        let err = (flat - cascaded) / flat;
        assert!(err > 0.0, "flat {flat} should exceed cascaded {cascaded}");
        assert!(
            err < 0.15,
            "guarded segments should cascade well, err = {err}"
        );
    }

    #[test]
    fn single_segment_flat_matches_isolated_extraction() {
        let mut tree = SegmentTree::new(0.0, 0.0);
        tree.add_node(0, 300.0, 0.0).unwrap();
        let s = solver();
        let flat = s.flat_loop_inductance(&tree).unwrap();
        let seg = s.segment_loop_inductance(300.0).unwrap();
        // Same physics, two formulations (branch network vs merged-node
        // reduction) — they must agree tightly.
        assert!(
            (flat - seg).abs() / seg < 0.02,
            "flat {flat} vs segment {seg}"
        );
    }

    #[test]
    fn fig6a_cascading_error_is_small() {
        let tree = SegmentTree::fig6a();
        let s = solver();
        let flat = s.flat_loop_inductance(&tree).unwrap();
        let casc = s.cascaded_loop_inductance(&tree).unwrap();
        let err = (flat - casc).abs() / flat;
        // Paper reports 3.57 % for tree (a); allow the same order.
        assert!(err < 0.10, "cascading error too large: {err}");
    }

    #[test]
    fn segment_loop_l_scales_superlinearly() {
        let s = solver();
        let l1 = s.segment_loop_inductance(500.0).unwrap();
        let l2 = s.segment_loop_inductance(1000.0).unwrap();
        assert!(
            l2 > 1.9 * l1,
            "loop L should grow at least ~linearly: {l2} vs {l1}"
        );
    }

    #[test]
    fn rejects_bad_cross_section() {
        assert!(FlatTreeSolver::new(0.0, 1.0, 1.0, 1.0, RHO_COPPER).is_err());
        assert!(FlatTreeSolver::new(1.0, 1.0, 1.0, 1.0, -2.0).is_err());
    }

    #[test]
    fn rejects_empty_tree() {
        let tree = SegmentTree::new(0.0, 0.0);
        assert!(solver().flat_loop_inductance(&tree).is_err());
    }

    #[test]
    fn port_impedance_has_positive_parts() {
        let tree = SegmentTree::fig6b();
        let z = solver().flat_port_impedance(&tree).unwrap();
        assert!(z.re > 0.0 && z.im > 0.0);
    }
}
