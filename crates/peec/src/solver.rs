//! Conductor-level partial extraction: the [`PartialSystem`].
//!
//! A [`PartialSystem`] holds a set of conductors and produces
//!
//! * the DC partial-inductance matrix `Lp` (Foundations 1 & 2 territory),
//! * DC resistances, and
//! * the frequency-dependent conductor impedance matrix `Z(ω)` including
//!   skin and proximity effects, via the volume-filament solve.

use crate::fastop::{
    self, BlockDiagPrecond, FastOpOptions, FastZOperator, KernelCache, SolverBackend,
};
use crate::mesh::MeshSpec;
use crate::partial::{dc_resistance, mutual_partial, self_partial};
use crate::{PeecError, Result};
use rlcx_geom::Bar;
use rlcx_numeric::lu::CLuDecomposition;
use rlcx_numeric::obs;
use rlcx_numeric::parallel::{balanced_index, par_map_threads, thread_count};
use rlcx_numeric::{CMatrix, Complex, Matrix, Timings};

/// One conductor of a [`PartialSystem`]: a bar plus its resistivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conductor {
    /// Geometry of the conductor.
    pub bar: Bar,
    /// Resistivity in Ω·m.
    pub rho: f64,
}

impl Conductor {
    /// Creates a conductor.
    ///
    /// # Errors
    ///
    /// Returns [`PeecError::InvalidParameter`] for a non-positive
    /// resistivity.
    pub fn new(bar: Bar, rho: f64) -> Result<Self> {
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(PeecError::InvalidParameter {
                what: format!("resistivity must be positive, got {rho}"),
            });
        }
        Ok(Conductor { bar, rho })
    }
}

/// A system of conductors to extract together.
///
/// # Example
///
/// ```
/// use rlcx_geom::{Axis, Bar, Point3};
/// use rlcx_geom::units::RHO_COPPER;
/// use rlcx_peec::{Conductor, PartialSystem};
///
/// # fn main() -> Result<(), rlcx_peec::PeecError> {
/// let mut sys = PartialSystem::new();
/// for y in [0.0, 6.0] {
///     let bar = Bar::new(Point3::new(0.0, y, 10.0), Axis::X, 1000.0, 5.0, 2.0)?;
///     sys.push(Conductor::new(bar, RHO_COPPER)?);
/// }
/// let lp = sys.lp_matrix();
/// assert!(lp[(0, 1)] > 0.0 && lp[(0, 1)] < lp[(0, 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PartialSystem {
    conductors: Vec<Conductor>,
}

impl PartialSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        PartialSystem {
            conductors: Vec::new(),
        }
    }

    /// Adds a conductor, returning its index.
    pub fn push(&mut self, c: Conductor) -> usize {
        self.conductors.push(c);
        self.conductors.len() - 1
    }

    /// Number of conductors.
    pub fn len(&self) -> usize {
        self.conductors.len()
    }

    /// Returns `true` when the system has no conductors.
    pub fn is_empty(&self) -> bool {
        self.conductors.is_empty()
    }

    /// Borrows the conductors.
    pub fn conductors(&self) -> &[Conductor] {
        &self.conductors
    }

    /// DC partial-inductance matrix (H): `Lp[i][i]` from the self formula,
    /// `Lp[i][j]` from the mutual formula (zero for orthogonal pairs).
    ///
    /// Each upper-triangle entry is an independent GMD quadrature, so the
    /// rows are assembled on [`thread_count`] scoped threads; the result is
    /// bit-identical to the serial loop (see
    /// [`PartialSystem::lp_matrix_with_threads`]).
    pub fn lp_matrix(&self) -> Matrix {
        self.lp_matrix_with_threads(thread_count())
    }

    /// [`PartialSystem::lp_matrix`] with an explicit thread count.
    ///
    /// Every entry is computed by the same pure function regardless of
    /// sharding, so any two thread counts produce bit-identical matrices —
    /// the determinism tests compare `lp_matrix_with_threads(1)` against
    /// `lp_matrix_with_threads(n)` exactly.
    pub fn lp_matrix_with_threads(&self, threads: usize) -> Matrix {
        let _span = obs::span("peec.lp_matrix");
        let n = self.len();
        obs::counter_add("peec.lp.conductors", n as u64);
        let rows = par_map_threads(threads, n, |k| {
            let i = balanced_index(k, n);
            // Entries (i, i..n) of the upper triangle.
            let mut row = vec![0.0; n - i];
            row[0] = self_partial(&self.conductors[i].bar);
            for j in (i + 1)..n {
                row[j - i] = mutual_partial(&self.conductors[i].bar, &self.conductors[j].bar);
            }
            (i, row)
        });
        let mut lp = Matrix::zeros(n, n);
        for (i, row) in rows {
            for (offset, m) in row.into_iter().enumerate() {
                let j = i + offset;
                lp[(i, j)] = m;
                lp[(j, i)] = m;
            }
        }
        lp
    }

    /// DC resistances (Ω), one per conductor.
    pub fn dc_resistances(&self) -> Vec<f64> {
        self.conductors
            .iter()
            .map(|c| dc_resistance(&c.bar, c.rho))
            .collect()
    }

    /// Conductor-level complex impedance matrix `Z(ω)` (Ω) at frequency `f`
    /// (Hz), including skin/proximity effect through an `mesh`-filament
    /// decomposition of every conductor.
    ///
    /// All conductors must be parallel with identical axial spans (they
    /// share end planes, as in a block cross-section); this is the
    /// configuration the paper's tables are characterized in.
    ///
    /// # Errors
    ///
    /// * [`PeecError::IncompatibleConductors`] if spans or axes differ,
    /// * [`PeecError::InvalidParameter`] for a non-positive frequency,
    /// * [`PeecError::Numeric`] if the filament system is singular.
    pub fn impedance_at(&self, f: f64, mesh: MeshSpec) -> Result<CMatrix> {
        self.impedance_at_with(f, |_| mesh)
    }

    /// Like [`PartialSystem::impedance_at`] but with a per-conductor mesh
    /// (e.g. fine meshes on signal traces, single filaments on wide ground-
    /// plane strips whose current distribution the strip decomposition
    /// already resolves).
    ///
    /// # Errors
    ///
    /// Same as [`PartialSystem::impedance_at`].
    pub fn impedance_at_with(
        &self,
        f: f64,
        mesh_for: impl Fn(usize) -> MeshSpec,
    ) -> Result<CMatrix> {
        let mut scratch = Timings::new();
        self.impedance_at_with_timings(f, mesh_for, &mut scratch)
    }

    /// [`PartialSystem::impedance_at_with`] with per-stage timing: `mesh`,
    /// `assemble` (filament Z fill), `factor` (LU inverse) and `reduce`
    /// (conductor-level admittance collapse) are accumulated into `timings`.
    ///
    /// Uses [`SolverBackend::Auto`]: dense below
    /// [`crate::fastop::ITERATIVE_CUTOVER`] filaments (bit-identical to the
    /// historical dense-only behaviour), the matrix-free GMRES path above.
    ///
    /// # Errors
    ///
    /// Same as [`PartialSystem::impedance_at`].
    pub fn impedance_at_with_timings(
        &self,
        f: f64,
        mesh_for: impl Fn(usize) -> MeshSpec,
        timings: &mut Timings,
    ) -> Result<CMatrix> {
        self.impedance_at_backend(f, mesh_for, SolverBackend::Auto, timings)
    }

    /// [`PartialSystem::impedance_at_with`] with an explicit
    /// [`SolverBackend`] (and no timing capture).
    ///
    /// # Errors
    ///
    /// Same as [`PartialSystem::impedance_at`]; the iterative backend can
    /// additionally fail with
    /// [`rlcx_numeric::NumericError::DidNotConverge`] (wrapped in
    /// [`PeecError::Numeric`]) if GMRES exhausts its iteration budget.
    pub fn impedance_at_with_backend(
        &self,
        f: f64,
        mesh_for: impl Fn(usize) -> MeshSpec,
        backend: SolverBackend,
    ) -> Result<CMatrix> {
        let mut scratch = Timings::new();
        self.impedance_at_backend(f, mesh_for, backend, &mut scratch)
    }

    /// The full impedance entry point: per-conductor mesh, explicit
    /// [`SolverBackend`], per-stage timings. The stage names are shared by
    /// both backends — `mesh`, `assemble` (dense fill / fast-operator
    /// build), `factor` (dense LU inverse / block-preconditioner LUs) and
    /// `reduce` (admittance collapse; on the iterative path this includes
    /// the GMRES solves).
    ///
    /// # Errors
    ///
    /// Same as [`PartialSystem::impedance_at_with_backend`].
    pub fn impedance_at_backend(
        &self,
        f: f64,
        mesh_for: impl Fn(usize) -> MeshSpec,
        backend: SolverBackend,
        timings: &mut Timings,
    ) -> Result<CMatrix> {
        if !(f > 0.0 && f.is_finite()) {
            return Err(PeecError::InvalidParameter {
                what: format!("frequency must be positive, got {f}"),
            });
        }
        if self.is_empty() {
            return Ok(CMatrix::zeros(0, 0));
        }
        let first = &self.conductors[0].bar;
        for c in &self.conductors[1..] {
            if c.bar.axis() != first.axis() || c.bar.axial_span() != first.axial_span() {
                return Err(PeecError::IncompatibleConductors {
                    what: "frequency-dependent solve needs parallel conductors sharing axial spans"
                        .into(),
                });
            }
        }
        let _solve_span = obs::span("peec.solve");
        obs::counter_add("peec.solves", 1);
        let (fils, owner, rhos) = timings.time("mesh", || {
            obs::with_span("peec.mesh", || self.meshed_filaments(mesh_for))
        });
        obs::counter_add("peec.filaments", fils.len() as u64);
        let omega = 2.0 * std::f64::consts::PI * f;
        if backend.is_iterative(fils.len()) {
            return self.impedance_iterative(&fils, &owner, &rhos, omega, timings);
        }
        let zf = timings.time("assemble", || {
            obs::with_span("peec.assemble", || {
                filament_z_matrix(&fils, &rhos, omega, thread_count())
            })
        });
        // Filaments of one conductor are in parallel between shared end
        // nodes: Y_cond = A Z_f⁻¹ Aᵀ with A the ownership incidence matrix.
        let yf = timings.time("factor", || {
            obs::with_span("peec.factor", || CLuDecomposition::new(&zf)?.inverse())
        })?;
        let _reduce_span = obs::span("peec.reduce");
        timings.time("reduce", || {
            let n = self.len();
            let nf = fils.len();
            let mut ycond = CMatrix::zeros(n, n);
            for i in 0..nf {
                for j in 0..nf {
                    ycond[(owner[i], owner[j])] += yf[(i, j)];
                }
            }
            Ok(CLuDecomposition::new(&ycond)?.inverse()?)
        })
    }

    /// The matrix-free path: kernel-cached hierarchical operator,
    /// per-conductor block preconditioner, one GMRES solve per conductor.
    fn impedance_iterative(
        &self,
        fils: &[Bar],
        owner: &[usize],
        rhos: &[f64],
        omega: f64,
        timings: &mut Timings,
    ) -> Result<CMatrix> {
        obs::counter_add("peec.solves.iterative", 1);
        // Every filament shares the conductors' common axial span, so the
        // kernel cache key never needs the axial coordinate.
        let kernel = KernelCache::new(self.conductors[0].bar.length());
        let op = timings.time("assemble", || {
            obs::with_span("peec.assemble", || {
                FastZOperator::new(fils, rhos, omega, &kernel, &FastOpOptions::default())
            })
        });
        let pre = timings.time("factor", || {
            obs::with_span("peec.factor", || {
                BlockDiagPrecond::new(fils, rhos, owner, self.len(), omega, &kernel)
            })
        })?;
        let _reduce_span = obs::span("peec.reduce");
        timings.time("reduce", || {
            let ycond = fastop::conductor_admittance(&op, &pre, owner, self.len())?;
            Ok(CLuDecomposition::new(&ycond)?.inverse()?)
        })
    }

    /// Meshes every conductor into filaments, returning the filament bars,
    /// the owning conductor index of each filament, and its resistivity.
    ///
    /// The resistivity is a per-conductor constant, computed once and
    /// replicated across that conductor's filaments (it used to be pushed
    /// filament-by-filament, re-reading the conductor each time).
    fn meshed_filaments(
        &self,
        mesh_for: impl Fn(usize) -> MeshSpec,
    ) -> (Vec<Bar>, Vec<usize>, Vec<f64>) {
        let mut fils: Vec<Bar> = Vec::new();
        let mut owner: Vec<usize> = Vec::new();
        let mut rhos: Vec<f64> = Vec::new();
        for (ci, c) in self.conductors.iter().enumerate() {
            let conductor_fils = mesh_for(ci).filaments(&c.bar);
            let count = conductor_fils.len();
            let rho = c.rho;
            fils.extend(conductor_fils);
            owner.extend(std::iter::repeat_n(ci, count));
            rhos.extend(std::iter::repeat_n(rho, count));
        }
        (fils, owner, rhos)
    }

    /// Per-filament complex currents when the conductors carry the given
    /// net currents at frequency `f` — the introspection view of skin and
    /// proximity effects. Returns `(filament, current)` pairs in
    /// conductor-then-mesh order; the filaments of each conductor sum to
    /// its requested net current.
    ///
    /// # Errors
    ///
    /// * [`PeecError::BadIndex`] if `conductor_currents.len() != self.len()`,
    /// * the same errors as [`PartialSystem::impedance_at`].
    pub fn filament_currents(
        &self,
        f: f64,
        mesh: MeshSpec,
        conductor_currents: &[Complex],
    ) -> Result<Vec<(Bar, Complex)>> {
        if conductor_currents.len() != self.len() {
            return Err(PeecError::BadIndex {
                what: format!(
                    "need {} conductor currents, got {}",
                    self.len(),
                    conductor_currents.len()
                ),
            });
        }
        // Conductor voltages for the requested currents, then filament
        // currents I_f = Z_f⁻¹ Aᵀ V (the same math as impedance_at, kept
        // explicit here because we need the intermediate).
        if !(f > 0.0 && f.is_finite()) {
            return Err(PeecError::InvalidParameter {
                what: format!("frequency must be positive, got {f}"),
            });
        }
        let z_cond = self.impedance_at(f, mesh)?;
        let v = z_cond.mul_vec(conductor_currents)?;
        let (fils, owner, rhos) = self.meshed_filaments(|_| mesh);
        let omega = 2.0 * std::f64::consts::PI * f;
        let zf = filament_z_matrix(&fils, &rhos, omega, thread_count());
        let rhs: Vec<Complex> = owner.iter().map(|&ci| v[ci]).collect();
        let i_f = CLuDecomposition::new(&zf)?.solve(&rhs)?;
        Ok(fils.into_iter().zip(i_f).collect())
    }

    /// Effective resistance and inductance matrices at frequency `f`:
    /// `R(ω) = Re Z`, `L(ω) = Im Z / ω`.
    ///
    /// # Errors
    ///
    /// Propagates [`PartialSystem::impedance_at`] errors.
    pub fn rl_at(&self, f: f64, mesh: MeshSpec) -> Result<(Matrix, Matrix)> {
        self.rl_at_backend(f, mesh, SolverBackend::Auto)
    }

    /// [`PartialSystem::rl_at`] with an explicit [`SolverBackend`].
    ///
    /// # Errors
    ///
    /// Propagates [`PartialSystem::impedance_at_with_backend`] errors.
    pub fn rl_at_backend(
        &self,
        f: f64,
        mesh: MeshSpec,
        backend: SolverBackend,
    ) -> Result<(Matrix, Matrix)> {
        let z = self.impedance_at_with_backend(f, |_| mesh, backend)?;
        let omega = 2.0 * std::f64::consts::PI * f;
        let n = z.rows();
        let mut r = Matrix::zeros(n, n);
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                r[(i, j)] = z[(i, j)].re;
                l[(i, j)] = z[(i, j)].im / omega;
            }
        }
        Ok((r, l))
    }
}

/// Filament impedance matrix `Z_f = R_f + jω Lp_f`, assembled row-by-row on
/// `threads` scoped threads.
///
/// The upper-triangle rows are independent pure computations (each entry is
/// one GMD quadrature), so the fill is sharded with the same balanced,
/// deterministic row interleaving as [`PartialSystem::lp_matrix_with_threads`]
/// — the matrix is bit-identical for every thread count.
fn filament_z_matrix(fils: &[Bar], rhos: &[f64], omega: f64, threads: usize) -> CMatrix {
    let nf = fils.len();
    let rows = par_map_threads(threads, nf, |k| {
        let i = balanced_index(k, nf);
        let mut row = vec![Complex::ZERO; nf - i];
        row[0] = Complex::new(
            dc_resistance(&fils[i], rhos[i]),
            omega * self_partial(&fils[i]),
        );
        for j in (i + 1)..nf {
            row[j - i] = Complex::from_imag(omega * mutual_partial(&fils[i], &fils[j]));
        }
        (i, row)
    });
    let mut zf = CMatrix::zeros(nf, nf);
    for (i, row) in rows {
        for (offset, m) in row.into_iter().enumerate() {
            let j = i + offset;
            zf[(i, j)] = m;
            zf[(j, i)] = m;
        }
    }
    zf
}

impl Extend<Conductor> for PartialSystem {
    fn extend<T: IntoIterator<Item = Conductor>>(&mut self, iter: T) {
        self.conductors.extend(iter);
    }
}

impl FromIterator<Conductor> for PartialSystem {
    fn from_iter<T: IntoIterator<Item = Conductor>>(iter: T) -> Self {
        PartialSystem {
            conductors: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;
    use rlcx_geom::{Axis, Point3};
    use rlcx_numeric::cholesky::is_positive_definite;

    fn cpw_system(len: f64) -> PartialSystem {
        // G(5) - 1 - S(10) - 1 - G(5), 2 µm thick, like Figure 1.
        let mut sys = PartialSystem::new();
        for (y, w) in [(0.0, 5.0), (6.0, 10.0), (17.0, 5.0)] {
            let bar = Bar::new(Point3::new(0.0, y, 10.0), Axis::X, len, w, 2.0).unwrap();
            sys.push(Conductor::new(bar, RHO_COPPER).unwrap());
        }
        sys
    }

    #[test]
    fn lp_matrix_is_spd_and_symmetric() {
        let sys = cpw_system(1000.0);
        let lp = sys.lp_matrix();
        assert!(lp.symmetry_defect() < 1e-12);
        assert!(is_positive_definite(&lp));
        // Mutuals are positive and below the smaller self term.
        assert!(lp[(0, 1)] > 0.0);
        assert!(lp[(0, 1)] < lp[(0, 0)].min(lp[(1, 1)]));
    }

    #[test]
    fn dc_resistances_match_formula() {
        let sys = cpw_system(6000.0);
        let r = sys.dc_resistances();
        assert!((r[1] - 5.16).abs() < 0.05); // 10 µm × 2 µm signal
        assert!((r[0] - 10.32).abs() < 0.1); // 5 µm grounds: double
    }

    #[test]
    fn impedance_reduces_to_dc_at_low_frequency() {
        let sys = cpw_system(1000.0);
        let z = sys.impedance_at(1e3, MeshSpec::new(2, 2)).unwrap();
        let r_dc = sys.dc_resistances();
        for i in 0..3 {
            assert!((z[(i, i)].re - r_dc[i]).abs() / r_dc[i] < 1e-3);
        }
        // L(low f) matches the DC partial matrix.
        let lp = sys.lp_matrix();
        let omega = 2.0 * std::f64::consts::PI * 1e3;
        for i in 0..3 {
            for j in 0..3 {
                let l_eff = z[(i, j)].im / omega;
                assert!(
                    (l_eff - lp[(i, j)]).abs() / lp[(i, j)] < 0.02,
                    "({i},{j}): {l_eff} vs {}",
                    lp[(i, j)]
                );
            }
        }
    }

    #[test]
    fn skin_effect_raises_r_and_lowers_l() {
        let sys = cpw_system(2000.0);
        let mesh = MeshSpec::new(5, 3);
        let (r_lo, l_lo) = sys.rl_at(1e6, mesh).unwrap();
        let (r_hi, l_hi) = sys.rl_at(2e10, mesh).unwrap();
        assert!(
            r_hi[(1, 1)] > r_lo[(1, 1)] * 1.02,
            "AC resistance should rise: {} vs {}",
            r_hi[(1, 1)],
            r_lo[(1, 1)]
        );
        assert!(
            l_hi[(1, 1)] < l_lo[(1, 1)],
            "internal inductance should shrink: {} vs {}",
            l_hi[(1, 1)],
            l_lo[(1, 1)]
        );
    }

    #[test]
    fn impedance_rejects_mismatched_spans() {
        let mut sys = cpw_system(1000.0);
        let bar = Bar::new(Point3::new(10.0, 40.0, 10.0), Axis::X, 990.0, 5.0, 2.0).unwrap();
        sys.push(Conductor::new(bar, RHO_COPPER).unwrap());
        assert!(matches!(
            sys.impedance_at(1e9, MeshSpec::single()),
            Err(PeecError::IncompatibleConductors { .. })
        ));
    }

    #[test]
    fn impedance_rejects_bad_frequency() {
        let sys = cpw_system(1000.0);
        assert!(sys.impedance_at(0.0, MeshSpec::single()).is_err());
        assert!(sys.impedance_at(f64::NAN, MeshSpec::single()).is_err());
    }

    #[test]
    fn empty_system_yields_empty_matrices() {
        let sys = PartialSystem::new();
        assert!(sys.is_empty());
        assert_eq!(sys.lp_matrix().rows(), 0);
        assert_eq!(sys.impedance_at(1e9, MeshSpec::single()).unwrap().rows(), 0);
    }

    #[test]
    fn filament_currents_sum_to_conductor_currents() {
        let sys = cpw_system(1000.0);
        let mesh = MeshSpec::new(3, 2);
        // Signal carries +1 A, grounds return −0.5 A each.
        let currents = [
            Complex::from_real(-0.5),
            Complex::ONE,
            Complex::from_real(-0.5),
        ];
        let per_fil = sys.filament_currents(3.2e9, mesh, &currents).unwrap();
        assert_eq!(per_fil.len(), 3 * mesh.filament_count());
        for (ci, expect) in currents.iter().enumerate() {
            let total: Complex = per_fil
                [ci * mesh.filament_count()..(ci + 1) * mesh.filament_count()]
                .iter()
                .map(|(_, i)| *i)
                .sum();
            assert!((total - *expect).abs() < 1e-9, "conductor {ci}: {total}");
        }
    }

    #[test]
    fn proximity_crowds_current_toward_the_return() {
        // Two parallel conductors, go and return, at high frequency: the
        // signal filaments nearest the return carry more current than the
        // far filaments. At low frequency the distribution is uniform.
        let mut sys = PartialSystem::new();
        for y in [0.0, 12.0] {
            let bar = Bar::new(Point3::new(0.0, y, 10.0), Axis::X, 2000.0, 10.0, 2.0).unwrap();
            sys.push(Conductor::new(bar, RHO_COPPER).unwrap());
        }
        let mesh = MeshSpec::new(5, 1);
        let currents = [Complex::ONE, Complex::from_real(-1.0)];
        let ratio_at = |f: f64| {
            let per_fil = sys.filament_currents(f, mesh, &currents).unwrap();
            // Conductor 0 spans y ∈ [0, 10]; its last filament (y ≈ 8–10)
            // is nearest the return at y = 12.
            let near = per_fil[4].1.abs();
            let far = per_fil[0].1.abs();
            near / far
        };
        let low = ratio_at(1e5);
        let high = ratio_at(2e10);
        assert!((low - 1.0).abs() < 0.05, "uniform at DC: {low}");
        assert!(high > 1.3, "crowding at high f: {high}");
    }

    #[test]
    fn filament_currents_validates_inputs() {
        let sys = cpw_system(500.0);
        assert!(sys
            .filament_currents(3.2e9, MeshSpec::single(), &[Complex::ONE])
            .is_err());
        assert!(sys
            .filament_currents(-1.0, MeshSpec::single(), &[Complex::ONE; 3])
            .is_err());
    }

    #[test]
    fn balanced_index_is_a_permutation() {
        // The interleave now lives in rlcx_numeric::parallel; this keeps
        // the solver-level contract pinned from this crate too.
        for n in [1, 2, 3, 8, 17] {
            let mut seen: Vec<usize> = (0..n).map(|k| balanced_index(k, n)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn lp_matrix_is_thread_count_invariant() {
        let mut sys = PartialSystem::new();
        for i in 0..9 {
            let bar = Bar::new(
                Point3::new(0.0, 8.0 * i as f64, 10.0),
                Axis::X,
                800.0,
                4.0,
                2.0,
            )
            .unwrap();
            sys.push(Conductor::new(bar, RHO_COPPER).unwrap());
        }
        let serial = sys.lp_matrix_with_threads(1);
        for threads in [2, 3, 8, 32] {
            let par = sys.lp_matrix_with_threads(threads);
            for i in 0..sys.len() {
                for j in 0..sys.len() {
                    assert_eq!(
                        serial[(i, j)].to_bits(),
                        par[(i, j)].to_bits(),
                        "threads={threads}, entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn impedance_timings_cover_every_stage() {
        let sys = cpw_system(1000.0);
        let mut timings = Timings::new();
        sys.impedance_at_with_timings(3.2e9, |_| MeshSpec::new(2, 2), &mut timings)
            .unwrap();
        for stage in ["mesh", "assemble", "factor", "reduce"] {
            assert!(timings.get(stage).is_some(), "missing stage {stage}");
        }
    }

    #[test]
    fn meshed_filaments_rho_precompute_regression() {
        // Satellite bugfix regression: precomputing rho once per conductor
        // must leave filament counts and resistances exactly as the old
        // per-filament push produced them.
        let sys = cpw_system(1200.0);
        let mesh = MeshSpec::new(4, 3);
        let (fils, owner, rhos) = sys.meshed_filaments(|_| mesh);
        assert_eq!(fils.len(), 3 * mesh.filament_count());
        assert_eq!(owner.len(), fils.len());
        assert_eq!(rhos.len(), fils.len());
        for (k, (fil, (&ci, &rho))) in fils.iter().zip(owner.iter().zip(&rhos)).enumerate() {
            // Reference semantics: one rho per filament, read off its owner.
            let expect = sys.conductors()[ci].rho;
            assert_eq!(rho.to_bits(), expect.to_bits(), "filament {k}");
            let r = dc_resistance(fil, rho);
            let r_old = dc_resistance(fil, sys.conductors()[k / mesh.filament_count()].rho);
            assert_eq!(r.to_bits(), r_old.to_bits(), "filament {k} resistance");
        }
    }

    #[test]
    fn iterative_backend_matches_dense_on_cpw() {
        let sys = cpw_system(1500.0);
        let mesh = MeshSpec::new(4, 3);
        let f = 3.2e9;
        let zd = sys
            .impedance_at_with_backend(f, |_| mesh, SolverBackend::Dense)
            .unwrap();
        let zi = sys
            .impedance_at_with_backend(f, |_| mesh, SolverBackend::Iterative)
            .unwrap();
        let scale = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| zd[(i, j)].abs())
            .fold(0.0, f64::max);
        for i in 0..3 {
            for j in 0..3 {
                let err = (zd[(i, j)] - zi[(i, j)]).abs();
                assert!(
                    err <= 1e-9 * scale,
                    "({i},{j}): dense {} vs iterative {}",
                    zd[(i, j)],
                    zi[(i, j)]
                );
            }
        }
    }

    #[test]
    fn auto_backend_is_dense_below_cutover() {
        // The default path must stay bit-identical to the historical dense
        // solve for every system below the cutover.
        let sys = cpw_system(900.0);
        let mesh = MeshSpec::new(3, 2);
        assert!(3 * mesh.filament_count() < crate::fastop::ITERATIVE_CUTOVER);
        let z_auto = sys.impedance_at(2e9, mesh).unwrap();
        let z_dense = sys
            .impedance_at_with_backend(2e9, |_| mesh, SolverBackend::Dense)
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(z_auto[(i, j)].re.to_bits(), z_dense[(i, j)].re.to_bits());
                assert_eq!(z_auto[(i, j)].im.to_bits(), z_dense[(i, j)].im.to_bits());
            }
        }
    }

    #[test]
    fn conductor_rejects_bad_resistivity() {
        let bar = Bar::new(Point3::default(), Axis::X, 10.0, 1.0, 1.0).unwrap();
        assert!(Conductor::new(bar, 0.0).is_err());
        assert!(Conductor::new(bar, -1.0).is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let bar = Bar::new(Point3::default(), Axis::X, 10.0, 1.0, 1.0).unwrap();
        let sys: PartialSystem =
            std::iter::repeat_with(|| Conductor::new(bar, RHO_COPPER).unwrap())
                .take(3)
                .enumerate()
                .map(|(i, c)| {
                    Conductor::new(c.bar.translated(0.0, 5.0 * i as f64, 0.0), c.rho).unwrap()
                })
                .collect();
        assert_eq!(sys.len(), 3);
    }
}
