//! Loop-inductance reduction and block-level extraction.
//!
//! The paper extends Foundations 1 & 2 to structures with local ground
//! planes by working with **loop** rather than partial inductance: the
//! ground plane(s) and the AC-ground traces are *merged with the far-end
//! sink nodes of the traces* into a common return. [`loop_impedance`]
//! performs exactly that reduction on a conductor-level impedance matrix,
//! and [`BlockExtractor`] packages the whole flow — place a [`Block`] in a
//! stackup, mesh the plane(s) into return strips, run the filament solve at
//! the significant frequency, reduce — which is what the table builder in
//! `rlcx-core` calls for every grid point.

use crate::fastop::SolverBackend;
use crate::mesh::MeshSpec;
use crate::solver::{Conductor, PartialSystem};
use crate::{PeecError, Result};
use rlcx_geom::{Axis, Bar, Block, Point3, ShieldConfig, Stackup};
use rlcx_numeric::lu::CLuDecomposition;
use rlcx_numeric::{CMatrix, Complex, Matrix};

/// Loop impedance matrix over the signal conductors, with the ground
/// conductors as a merged return.
///
/// Model: every signal `i` runs from its near-end port to a **common far
/// node**; every ground conductor connects the far node back to the common
/// near-end reference. Exciting signal `k` with unit current and solving
/// KCL at the far node yields column `k` of `Z_loop`.
///
/// For one signal and one ground this reduces to the textbook
/// `Z_loop = Z_ss + Z_gg − 2 Z_sg`.
///
/// # Errors
///
/// * [`PeecError::BadPartition`] if `signals` or `grounds` is empty, they
///   overlap, or contain out-of-range/duplicate indices,
/// * [`PeecError::Numeric`] if the ground subsystem is singular.
pub fn loop_impedance(z: &CMatrix, signals: &[usize], grounds: &[usize]) -> Result<CMatrix> {
    let n = z.rows();
    if signals.is_empty() || grounds.is_empty() {
        return Err(PeecError::BadPartition {
            what: "need at least one signal and one ground".into(),
        });
    }
    let mut seen = vec![false; n];
    for &i in signals.iter().chain(grounds) {
        if i >= n {
            return Err(PeecError::BadPartition {
                what: format!("index {i} out of range ({n})"),
            });
        }
        if seen[i] {
            return Err(PeecError::BadPartition {
                what: format!("index {i} appears twice"),
            });
        }
        seen[i] = true;
    }
    // Only the ground-ground block is ever factored, so it is the only
    // submatrix materialized; the signal rows/columns are read straight out
    // of `z` through the index lists, and the per-column buffers are hoisted
    // out of the loop and refilled in place. Entry-for-entry this performs
    // the same arithmetic as the submatrix formulation — results are
    // bit-identical, just without the three signal-block copies.
    let zgg = z.submatrix(grounds, grounds);
    let ng = grounds.len();
    let ns = signals.len();
    let lu = CLuDecomposition::new(&zgg)?;
    // w = Z_GG⁻¹ · 1 and q_k = Z_GG⁻¹ · (Z_GS e_k).
    let ones = vec![Complex::ONE; ng];
    let w = lu.solve(&ones)?;
    let w_sum: Complex = w.iter().copied().sum();
    let mut out = CMatrix::zeros(ns, ns);
    let mut zgs_col = vec![Complex::ZERO; ng];
    let mut q = vec![Complex::ZERO; ng];
    let mut ig = vec![Complex::ZERO; ng];
    for (k, &sk) in signals.iter().enumerate() {
        for (col, &g) in zgs_col.iter_mut().zip(grounds) {
            *col = z[(g, sk)];
        }
        lu.solve_into(&zgs_col, &mut q)?;
        let q_sum: Complex = q.iter().copied().sum();
        // KCL at the merged far node: 1ᵀ I_G = −1ᵀ I_S = −1.
        let v_far = (Complex::ONE - q_sum) / w_sum;
        // Ground currents: I_G = −V_far·w − q.
        for ((gi, &wi), &qi) in ig.iter_mut().zip(&w).zip(&*q) {
            *gi = -(v_far * wi) - qi;
        }
        // Port voltages: V_port = V_far + Z_SS e_k + Z_SG I_G.
        for (i, &si) in signals.iter().enumerate() {
            let mut v = v_far + z[(si, sk)];
            for (&g, &igg) in grounds.iter().zip(&ig) {
                v += z[(si, g)] * igg;
            }
            out[(i, k)] = v;
        }
    }
    Ok(out)
}

/// Splits a loop impedance matrix into `(R_loop, L_loop)` at angular
/// frequency `omega`.
///
/// # Panics
///
/// Panics if `omega` is not positive.
pub fn loop_rl(z_loop: &CMatrix, omega: f64) -> (Matrix, Matrix) {
    assert!(omega > 0.0, "angular frequency must be positive");
    let n = z_loop.rows();
    let mut r = Matrix::zeros(n, n);
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            r[(i, j)] = z_loop[(i, j)].re;
            l[(i, j)] = z_loop[(i, j)].im / omega;
        }
    }
    (r, l)
}

/// A local ground plane to be meshed into return strips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneSpec {
    /// Height of the plane's bottom face (µm).
    pub z_bottom: f64,
    /// Plane metal thickness (µm).
    pub thickness: f64,
    /// Transverse coordinate of the plane's left edge (µm).
    pub transverse_origin: f64,
    /// Total plane width (µm).
    pub width: f64,
    /// Number of strips the plane is meshed into.
    pub strips: usize,
    /// Plane resistivity (Ω·m).
    pub rho: f64,
}

impl PlaneSpec {
    /// Meshes the plane into `strips` parallel bars along `axis` spanning
    /// `[axial_origin, axial_origin + length]`.
    pub fn to_bars(&self, axis: Axis, axial_origin: f64, length: f64) -> Vec<Bar> {
        let n = self.strips.max(1);
        let sw = self.width / n as f64;
        (0..n)
            .map(|i| {
                let t = self.transverse_origin + i as f64 * sw;
                let origin = match axis {
                    Axis::X => Point3::new(axial_origin, t, self.z_bottom),
                    Axis::Y => Point3::new(t, axial_origin, self.z_bottom),
                };
                Bar::new(origin, axis, length, sw, self.thickness)
                    .expect("plane dimensions positive")
            })
            .collect()
    }
}

/// Result of a block extraction.
#[derive(Debug, Clone)]
pub struct BlockExtraction {
    /// DC partial-inductance matrix over the block's traces (H),
    /// T1..Tn order — what Foundations 1 & 2 are stated about.
    pub lp: Matrix,
    /// DC resistance per trace (Ω).
    pub r_dc: Vec<f64>,
    /// Loop resistance matrix over the **signal** traces (Ω) at the
    /// extraction frequency.
    pub loop_r: Matrix,
    /// Loop inductance matrix over the **signal** traces (H) at the
    /// extraction frequency — the quantity the paper stores in its
    /// microstrip/stripline tables.
    pub loop_l: Matrix,
    /// The extraction frequency (Hz).
    pub frequency: f64,
}

/// Extracts [`Block`]s placed in a [`Stackup`] layer — the substitute for
/// "invoke Raphael RI3 on the structure".
///
/// The extractor owns everything that is *not* per-block: the stackup, the
/// layer, the significant frequency, filament mesh density and plane
/// meshing parameters. [`BlockExtractor::extract`] then maps a block to a
/// [`BlockExtraction`].
#[derive(Debug, Clone)]
pub struct BlockExtractor {
    stackup: Stackup,
    layer_index: usize,
    frequency: f64,
    mesh: MeshSpec,
    plane_margin_factor: f64,
    plane_strips: Option<usize>,
    backend: SolverBackend,
}

impl BlockExtractor {
    /// Creates an extractor for blocks routed in `layer_index` of `stackup`,
    /// with defaults: 3.2 GHz significant frequency (100 ps edges), a 3×2
    /// filament mesh, plane margin factor 1.0 and 12 plane strips.
    ///
    /// # Errors
    ///
    /// Returns [`PeecError::Geometry`] if the layer does not exist.
    pub fn new(stackup: Stackup, layer_index: usize) -> Result<Self> {
        stackup.layer(layer_index)?;
        Ok(BlockExtractor {
            stackup,
            layer_index,
            frequency: 3.2e9,
            mesh: MeshSpec::default(),
            plane_margin_factor: 1.0,
            plane_strips: None,
            backend: SolverBackend::Auto,
        })
    }

    /// Sets the extraction (significant) frequency in Hz.
    #[must_use]
    pub fn frequency(mut self, f: f64) -> Self {
        self.frequency = f;
        self
    }

    /// Sets the filament mesh used for every trace.
    #[must_use]
    pub fn mesh(mut self, mesh: MeshSpec) -> Self {
        self.mesh = mesh;
        self
    }

    /// Sets how far the meshed plane extends beyond each side of the block,
    /// as a multiple of the block's total width.
    #[must_use]
    pub fn plane_margin_factor(mut self, factor: f64) -> Self {
        self.plane_margin_factor = factor;
        self
    }

    /// Sets the number of strips each ground plane is meshed into.
    ///
    /// When not set explicitly, the extractor uses 12 strips on the dense
    /// default path, and 24 when the [`SolverBackend::Iterative`] fast path
    /// is requested — the matrix-free solve makes the finer plane
    /// resolution affordable.
    #[must_use]
    pub fn plane_strips(mut self, strips: usize) -> Self {
        self.plane_strips = Some(strips.max(1));
        self
    }

    /// Selects the filament-level solver backend used by [`extract`].
    ///
    /// [`extract`]: BlockExtractor::extract
    #[must_use]
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The plane strip count [`extract`] will actually use: the explicit
    /// setting if any, otherwise 24 for the iterative backend and 12 for
    /// dense/auto.
    ///
    /// [`extract`]: BlockExtractor::extract
    pub fn effective_plane_strips(&self) -> usize {
        match (self.plane_strips, self.backend) {
            (Some(strips), _) => strips,
            (None, SolverBackend::Iterative) => 24,
            (None, _) => 12,
        }
    }

    /// The extraction frequency (Hz).
    pub fn extraction_frequency(&self) -> f64 {
        self.frequency
    }

    /// Borrows the stackup.
    pub fn stackup(&self) -> &Stackup {
        &self.stackup
    }

    /// Extracts a block: materialize traces in the layer, mesh the plane(s)
    /// demanded by the block's [`ShieldConfig`], run the filament solve at
    /// the significant frequency, and reduce to loop R/L over the signal
    /// traces with AC-ground traces (+ plane strips) as the merged return.
    ///
    /// # Errors
    ///
    /// * [`PeecError::Geometry`] if a required plane layer (N±2) does not
    ///   exist in the stackup,
    /// * solver errors propagated from the filament solve.
    pub fn extract(&self, block: &Block) -> Result<BlockExtraction> {
        let _span = rlcx_numeric::obs::span("peec.block_extract");
        rlcx_numeric::obs::counter_add("peec.block_extracts", 1);
        let layer = self.stackup.layer(self.layer_index)?;
        let trace_bars = block.to_bars(layer, Axis::X, 0.0, 0.0);
        let rho = layer.resistivity();

        // Trace-only partial extraction (Foundations 1 & 2 live here).
        let trace_sys: PartialSystem = trace_bars
            .iter()
            .map(|&bar| Conductor::new(bar, rho).expect("validated rho"))
            .collect();
        let lp = trace_sys.lp_matrix();
        let r_dc = trace_sys.dc_resistances();

        // Full system: traces + plane strips (if any).
        let mut sys = trace_sys;
        let n_traces = block.trace_count();
        let mut grounds: Vec<usize> = block.ground_indices();
        let plane_width = block.total_width() * (1.0 + 2.0 * self.plane_margin_factor);
        let plane_t0 = -block.total_width() * self.plane_margin_factor;
        let strips = self.effective_plane_strips();
        let add_plane = |sys: &mut PartialSystem, plane_layer: &rlcx_geom::Layer| {
            let spec = PlaneSpec {
                z_bottom: plane_layer.z_bottom(),
                thickness: plane_layer.thickness(),
                transverse_origin: plane_t0,
                width: plane_width,
                strips,
                rho: plane_layer.resistivity(),
            };
            for bar in spec.to_bars(Axis::X, 0.0, block.length()) {
                sys.push(Conductor::new(bar, spec.rho).expect("validated rho"));
            }
        };
        match block.shield() {
            ShieldConfig::Coplanar => {}
            ShieldConfig::PlaneBelow => {
                let pl = self.plane_layer(self.layer_index, -2)?;
                add_plane(&mut sys, &pl);
            }
            ShieldConfig::PlaneAbove => {
                let pl = self.plane_layer(self.layer_index, 2)?;
                add_plane(&mut sys, &pl);
            }
            ShieldConfig::PlaneBoth => {
                let below = self.plane_layer(self.layer_index, -2)?;
                add_plane(&mut sys, &below);
                let above = self.plane_layer(self.layer_index, 2)?;
                add_plane(&mut sys, &above);
            }
        }
        grounds.extend(n_traces..sys.len());

        // Traces get the configured filament mesh; plane strips stay single
        // filaments (the strip decomposition already resolves the plane's
        // transverse current distribution).
        let mesh = self.mesh;
        let z = sys.impedance_at_with_backend(
            self.frequency,
            |ci| {
                if ci < n_traces {
                    mesh
                } else {
                    MeshSpec::single()
                }
            },
            self.backend,
        )?;
        let signals = block.signal_indices();
        let z_loop = loop_impedance(&z, &signals, &grounds)?;
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        let (loop_r, loop_l) = loop_rl(&z_loop, omega);
        Ok(BlockExtraction {
            lp,
            r_dc,
            loop_r,
            loop_l,
            frequency: self.frequency,
        })
    }

    fn plane_layer(&self, base: usize, offset: isize) -> Result<rlcx_geom::Layer> {
        let idx = base as isize + offset;
        if idx < 0 {
            return Err(PeecError::Geometry(rlcx_geom::GeomError::UnknownLayer {
                index: 0,
                available: self.stackup.layer_count(),
            }));
        }
        Ok(self.stackup.layer(idx as usize)?.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;

    fn two_wire_z(ls: f64, lg: f64, m: f64, rs: f64, rg: f64, omega: f64) -> CMatrix {
        let mut z = CMatrix::zeros(2, 2);
        z[(0, 0)] = Complex::new(rs, omega * ls);
        z[(1, 1)] = Complex::new(rg, omega * lg);
        z[(0, 1)] = Complex::from_imag(omega * m);
        z[(1, 0)] = z[(0, 1)];
        z
    }

    #[test]
    fn one_signal_one_ground_is_textbook() {
        let (ls, lg, m) = (1.0e-9, 1.2e-9, 0.4e-9);
        let (rs, rg) = (2.0, 3.0);
        let omega = 2.0 * std::f64::consts::PI * 1e9;
        let z = two_wire_z(ls, lg, m, rs, rg, omega);
        let zl = loop_impedance(&z, &[0], &[1]).unwrap();
        let (r, l) = loop_rl(&zl, omega);
        assert!((l[(0, 0)] - (ls + lg - 2.0 * m)).abs() / (ls + lg) < 1e-12);
        assert!((r[(0, 0)] - (rs + rg)).abs() < 1e-9);
    }

    #[test]
    fn two_identical_grounds_halve_the_return_contribution() {
        // Signal 0, grounds 1 and 2 identical and uncoupled from each other:
        // returns split evenly → L_loop = Ls + Lg/2 − 2M.
        let omega = 1e10;
        let (ls, lg, m) = (1.0e-9, 1.0e-9, 0.3e-9);
        let mut z = CMatrix::zeros(3, 3);
        z[(0, 0)] = Complex::from_imag(omega * ls);
        z[(1, 1)] = Complex::from_imag(omega * lg);
        z[(2, 2)] = Complex::from_imag(omega * lg);
        z[(0, 1)] = Complex::from_imag(omega * m);
        z[(1, 0)] = z[(0, 1)];
        z[(0, 2)] = Complex::from_imag(omega * m);
        z[(2, 0)] = z[(0, 2)];
        let zl = loop_impedance(&z, &[0], &[1, 2]).unwrap();
        let l = zl[(0, 0)].im / omega;
        assert!((l - (ls + lg / 2.0 - 2.0 * m)).abs() / ls < 1e-12);
    }

    #[test]
    fn partition_validation() {
        let z = CMatrix::identity(3);
        assert!(matches!(
            loop_impedance(&z, &[], &[1]),
            Err(PeecError::BadPartition { .. })
        ));
        assert!(loop_impedance(&z, &[0], &[]).is_err());
        assert!(loop_impedance(&z, &[0], &[0]).is_err()); // overlap
        assert!(loop_impedance(&z, &[0], &[7]).is_err()); // out of range
    }

    #[test]
    fn loop_matrix_is_symmetric_for_symmetric_input() {
        // Two signals between two grounds, symmetric placement.
        let omega = 1e10;
        let mut z = CMatrix::zeros(4, 4);
        let l = [1.0e-9, 1.0e-9, 1.1e-9, 1.1e-9]; // g, g, s, s
        for i in 0..4 {
            z[(i, i)] = Complex::from_imag(omega * l[i]);
        }
        let pairs = [
            ((0, 1), 0.2e-9),
            ((0, 2), 0.4e-9),
            ((0, 3), 0.3e-9),
            ((1, 2), 0.3e-9),
            ((1, 3), 0.4e-9),
            ((2, 3), 0.5e-9),
        ];
        for ((i, j), m) in pairs {
            z[(i, j)] = Complex::from_imag(omega * m);
            z[(j, i)] = z[(i, j)];
        }
        let zl = loop_impedance(&z, &[2, 3], &[0, 1]).unwrap();
        assert!((zl[(0, 1)] - zl[(1, 0)]).abs() < 1e-12 * zl[(0, 0)].abs());
        // Diagonals equal by the symmetric construction.
        assert!((zl[(0, 0)] - zl[(1, 1)]).abs() < 1e-9 * zl[(0, 0)].abs());
    }

    #[test]
    fn plane_spec_meshes_into_strips() {
        let spec = PlaneSpec {
            z_bottom: 3.0,
            thickness: 0.5,
            transverse_origin: -10.0,
            width: 40.0,
            strips: 8,
            rho: RHO_COPPER,
        };
        let bars = spec.to_bars(Axis::X, 0.0, 500.0);
        assert_eq!(bars.len(), 8);
        let total: f64 = bars.iter().map(Bar::width).sum();
        assert!((total - 40.0).abs() < 1e-9);
        assert_eq!(bars[0].transverse_span().0, -10.0);
        assert_eq!(bars[7].transverse_span().1, 30.0);
        for b in &bars {
            assert_eq!(b.vertical_span(), (3.0, 3.5));
            assert_eq!(b.length(), 500.0);
        }
    }

    #[test]
    fn extractor_cpw_loop_l_in_physical_band() {
        let stackup = Stackup::hp_six_metal_copper();
        let block = Block::coplanar_waveguide(1000.0, 10.0, 5.0, 1.0).unwrap();
        let ex = BlockExtractor::new(stackup, 5).unwrap().frequency(3.2e9);
        let out = ex.extract(&block).unwrap();
        // CPW loop inductance: a few hundred pH per mm.
        let l = out.loop_l[(0, 0)];
        assert!(l > 0.1e-9 && l < 1.5e-9, "L_loop = {l}");
        assert!(out.loop_r[(0, 0)] > 0.0);
        assert_eq!(out.lp.rows(), 3);
        assert_eq!(out.r_dc.len(), 3);
    }

    #[test]
    fn plane_below_reduces_loop_inductance() {
        let stackup = Stackup::hp_six_metal_copper();
        let cpw = Block::coplanar_waveguide(1000.0, 10.0, 5.0, 1.0).unwrap();
        let ms = cpw.with_shield(ShieldConfig::PlaneBelow);
        let ex = BlockExtractor::new(stackup, 5).unwrap().frequency(3.2e9);
        let l_cpw = ex.extract(&cpw).unwrap().loop_l[(0, 0)];
        let l_ms = ex.extract(&ms).unwrap().loop_l[(0, 0)];
        assert!(
            l_ms < l_cpw,
            "a nearby plane must shrink the loop: {l_ms} vs {l_cpw}"
        );
    }

    #[test]
    fn extractor_rejects_missing_plane_layer() {
        let stackup = Stackup::hp_six_metal_copper();
        // Layer 0 has no layer −2 below.
        let block = Block::coplanar_waveguide(500.0, 2.0, 2.0, 1.0)
            .unwrap()
            .with_shield(ShieldConfig::PlaneBelow);
        let ex = BlockExtractor::new(stackup, 0).unwrap();
        assert!(ex.extract(&block).is_err());
    }

    #[test]
    fn extractor_rejects_missing_layer() {
        assert!(BlockExtractor::new(Stackup::hp_six_metal_copper(), 11).is_err());
    }
}
