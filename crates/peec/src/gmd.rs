//! Geometric mean distances (GMD) between conductor cross-sections.
//!
//! The Neumann mutual-inductance integral between two parallel conductors of
//! rectangular cross-section reduces to the *filament* formula evaluated at
//! the geometric mean distance of the two cross-sections:
//! `ln g = (1/(A₁A₂)) ∬∬ ln r dA₁ dA₂`.
//!
//! For well-separated sections the GMD is essentially the center distance;
//! for close sections (spacing comparable to the width — exactly the regime
//! of minimum-pitch clock shields) the difference matters, so we integrate
//! numerically.

use rlcx_geom::Bar;
use rlcx_numeric::quadrature::integrate_4d;

/// Self-GMD of a rectangular cross-section `w × t`, using the classical
/// approximation `g ≈ 0.2235 (w + t)` (exact for the thin-strip and square
/// limits to within ~1 %; it is the distance underlying Ruehli's self
/// partial-inductance formula).
///
/// # Panics
///
/// Panics (in debug builds) if `w` or `t` is not positive.
#[inline]
pub fn self_gmd(w: f64, t: f64) -> f64 {
    debug_assert!(w > 0.0 && t > 0.0, "cross-section must be positive");
    0.2235 * (w + t)
}

/// Numerically integrated GMD between two rectangles in the cross-section
/// plane: rectangle 1 spans `u ∈ [u1, u1+w1]`, `v ∈ [v1, v1+t1]`; rectangle 2
/// likewise. `order` is the Gauss–Legendre order per dimension.
///
/// The rectangles must be disjoint (the integrand is singular on overlap).
///
/// # Panics
///
/// Panics if `order == 0`.
#[allow(clippy::too_many_arguments)]
pub fn mutual_gmd(
    (u1, w1): (f64, f64),
    (v1, t1): (f64, f64),
    (u2, w2): (f64, f64),
    (v2, t2): (f64, f64),
    order: usize,
) -> f64 {
    let area = w1 * t1 * w2 * t2;
    let integral = integrate_4d(
        |a1, b1, a2, b2| {
            let du = a1 - a2;
            let dv = b1 - b2;
            let r2 = du * du + dv * dv;
            // Guard the (measure-zero) touching-corner case.
            if r2 < 1e-30 {
                0.0
            } else {
                0.5 * r2.ln()
            }
        },
        ((u1, u1 + w1), (v1, v1 + t1)),
        ((u2, u2 + w2), (v2, v2 + t2)),
        order,
    );
    (integral / area).exp()
}

/// GMD between the cross-sections of two parallel bars, choosing between the
/// numerical integral (close spacing) and the center-distance approximation
/// (far spacing, where the relative error of the approximation is < 0.1 %).
///
/// # Panics
///
/// Panics if the bars are not parallel.
pub fn bar_gmd(a: &Bar, b: &Bar) -> f64 {
    assert!(a.is_parallel(b), "GMD requires parallel bars");
    let center = a.cross_section_distance(b);
    let scale = a
        .width()
        .max(a.thickness())
        .max(b.width())
        .max(b.thickness());
    if center > 4.0 * scale {
        return center;
    }
    let (ta, _) = a.transverse_span();
    let (za, _) = a.vertical_span();
    let (tb, _) = b.transverse_span();
    let (zb, _) = b.vertical_span();
    mutual_gmd(
        (ta, a.width()),
        (za, a.thickness()),
        (tb, b.width()),
        (zb, b.thickness()),
        8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::{Axis, Point3};

    #[test]
    fn self_gmd_of_square() {
        // Classical: self-GMD of a square of side a is ≈ 0.44705 a.
        let g = self_gmd(1.0, 1.0);
        assert!((g - 0.447).abs() < 0.01);
    }

    #[test]
    fn mutual_gmd_approaches_center_distance_when_far() {
        // Two 1×1 squares 20 apart: GMD ≈ 20 to high accuracy.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (20.0, 1.0), (0.0, 1.0), 8);
        assert!((g - 20.0).abs() / 20.0 < 1e-3, "g = {g}");
    }

    #[test]
    fn mutual_gmd_exceeds_center_distance_for_coplanar_close_pair() {
        // Two coplanar 1×1 squares with small gap: the classical result is
        // that the GMD of two side-by-side squares slightly exceeds... in
        // fact for squares at center distance d the GMD is slightly *less*
        // than d for d barely above touching; we only check it is finite,
        // positive, and within a sane band around the center distance.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.2, 1.0), (0.0, 1.0), 12);
        let center = 1.2 + 0.5 - 0.5; // center-to-center = 1.2 + ... = 1.2? centers at 0.5 and 1.7 → 1.2
        assert!(g > 0.8 * center && g < 1.2 * center, "g = {g}");
    }

    #[test]
    fn grover_tabulated_equal_squares() {
        // Grover (Ch. 3): for two equal squares of side a at center distance
        // d = 2a, ln(GMD/d) ≈ small correction; GMD/d should be within 2 %.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (2.0, 1.0), (0.0, 1.0), 12);
        assert!((g / 2.0 - 1.0).abs() < 0.02, "g = {g}");
    }

    #[test]
    fn bar_gmd_far_uses_center_distance() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 1.0, 1.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 50.0, 0.0), Axis::X, 100.0, 1.0, 1.0).unwrap();
        assert_eq!(bar_gmd(&a, &b), a.cross_section_distance(&b));
    }

    #[test]
    fn bar_gmd_close_is_numerical_and_sane() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 5.0, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 6.0, 0.0), Axis::X, 100.0, 10.0, 2.0).unwrap();
        let g = bar_gmd(&a, &b);
        let center = a.cross_section_distance(&b);
        assert!(
            g > 0.0 && (g / center - 1.0).abs() < 0.25,
            "g = {g}, c = {center}"
        );
    }

    #[test]
    fn gmd_is_symmetric() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 3.0, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 4.0, 1.0), Axis::X, 100.0, 2.0, 1.0).unwrap();
        assert!((bar_gmd(&a, &b) - bar_gmd(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn gmd_converges_with_order() {
        let g8 = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.5, 1.0), (0.0, 1.0), 8);
        let g16 = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.5, 1.0), (0.0, 1.0), 16);
        assert!((g8 - g16).abs() / g16 < 1e-3);
    }
}
