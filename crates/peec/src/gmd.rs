//! Geometric mean distances (GMD) between conductor cross-sections.
//!
//! The Neumann mutual-inductance integral between two parallel conductors of
//! rectangular cross-section reduces to the *filament* formula evaluated at
//! the geometric mean distance of the two cross-sections:
//! `ln g = (1/(A₁A₂)) ∬∬ ln r dA₁ dA₂`.
//!
//! For well-separated sections the GMD is essentially the center distance;
//! for close sections (spacing comparable to the width — exactly the regime
//! of minimum-pitch clock shields) the difference matters, so we integrate
//! numerically.

use rlcx_geom::Bar;
use rlcx_numeric::quadrature::integrate_4d;

/// Self-GMD of a rectangular cross-section `w × t`, using the classical
/// approximation `g ≈ 0.2235 (w + t)` (exact for the thin-strip and square
/// limits to within ~1 %; it is the distance underlying Ruehli's self
/// partial-inductance formula).
///
/// # Panics
///
/// Panics (in debug builds) if `w` or `t` is not positive.
#[inline]
pub fn self_gmd(w: f64, t: f64) -> f64 {
    debug_assert!(w > 0.0 && t > 0.0, "cross-section must be positive");
    0.2235 * (w + t)
}

/// Numerically integrated GMD between two rectangles in the cross-section
/// plane: rectangle 1 spans `u ∈ [u1, u1+w1]`, `v ∈ [v1, v1+t1]`; rectangle 2
/// likewise. `order` is the Gauss–Legendre order per dimension.
///
/// The rectangles must be disjoint (the integrand is singular on overlap).
///
/// # Panics
///
/// Panics if `order == 0`.
#[allow(clippy::too_many_arguments)]
pub fn mutual_gmd(
    (u1, w1): (f64, f64),
    (v1, t1): (f64, f64),
    (u2, w2): (f64, f64),
    (v2, t2): (f64, f64),
    order: usize,
) -> f64 {
    let area = w1 * t1 * w2 * t2;
    let integral = integrate_4d(
        |a1, b1, a2, b2| {
            let du = a1 - a2;
            let dv = b1 - b2;
            let r2 = du * du + dv * dv;
            // Guard the (measure-zero) touching-corner case.
            if r2 < 1e-30 {
                0.0
            } else {
                0.5 * r2.ln()
            }
        },
        ((u1, u1 + w1), (v1, v1 + t1)),
        ((u2, u2 + w2), (v2, v2 + t2)),
        order,
    );
    (integral / area).exp()
}

/// GMD between the cross-sections of two parallel bars, choosing between the
/// numerical integral (close spacing) and the center-distance approximation
/// (far spacing, where the relative error of the approximation is < 0.1 %).
///
/// # Panics
///
/// Panics if the bars are not parallel.
pub fn bar_gmd(a: &Bar, b: &Bar) -> f64 {
    assert!(a.is_parallel(b), "GMD requires parallel bars");
    if cross_section_is_far(a, b) {
        return a.cross_section_distance(b);
    }
    let (ta, _) = a.transverse_span();
    let (za, _) = a.vertical_span();
    let (tb, _) = b.transverse_span();
    let (zb, _) = b.vertical_span();
    mutual_gmd(
        (ta, a.width()),
        (za, a.thickness()),
        (tb, b.width()),
        (zb, b.thickness()),
        8,
    )
}

/// [`bar_gmd`]'s near/far classification as a standalone predicate: far
/// when the center distance exceeds 4× the largest cross-section
/// dimension.
///
/// Regular filament meshes routinely place pairs *exactly at* this
/// threshold (the center distance is an integer multiple of the filament
/// pitch), where the absolute-coordinate center in [`bar_gmd`] and the
/// relative-coordinate center in [`relative_gmd`] can round to opposite
/// sides of the comparison — and the two branches differ by up to the
/// far-field approximation error (~1e-3). Any code that must reproduce
/// [`bar_gmd`]'s values (the fast-operator kernel cache) therefore takes
/// the branch from this predicate on the actual bars and forces it via
/// [`relative_gmd_with`], instead of re-deciding from relative offsets.
pub fn cross_section_is_far(a: &Bar, b: &Bar) -> bool {
    let center = a.cross_section_distance(b);
    let scale = a
        .width()
        .max(a.thickness())
        .max(b.width())
        .max(b.thickness());
    center > 4.0 * scale
}

/// GMD of two rectangular cross-sections given in *relative* coordinates:
/// rectangle 1 is anchored at the origin (`w1 × t1`), rectangle 2 at offset
/// `(dt, dz)` (`w2 × t2`). Same near/far policy as [`bar_gmd`] — center
/// distance beyond `4×` the largest dimension, numerical integral at
/// order 8 otherwise.
///
/// Because the quadrature always runs in origin-anchored coordinates, the
/// result depends only on the relative placement — two filament pairs with
/// the same cross-sections and offset produce the *same bits*, which is
/// what the fast-operator kernel cache memoizes on. [`bar_gmd`] evaluates
/// the same integral in absolute coordinates and can differ from this in
/// the last few ULPs; the dense path keeps using [`bar_gmd`] so its
/// results stay bit-identical.
pub fn relative_gmd(w1: f64, t1: f64, w2: f64, t2: f64, dt: f64, dz: f64) -> f64 {
    let cx = dt + 0.5 * (w2 - w1);
    let cz = dz + 0.5 * (t2 - t1);
    let center = cx.hypot(cz);
    let scale = w1.max(t1).max(w2).max(t2);
    relative_gmd_with(w1, t1, w2, t2, dt, dz, center > 4.0 * scale)
}

/// [`relative_gmd`] with the near/far branch decided by the caller — see
/// [`cross_section_is_far`] for why borderline pairs must inherit the
/// branch from the absolute-coordinate test rather than re-deriving it.
pub fn relative_gmd_with(w1: f64, t1: f64, w2: f64, t2: f64, dt: f64, dz: f64, far: bool) -> f64 {
    if far {
        let cx = dt + 0.5 * (w2 - w1);
        let cz = dz + 0.5 * (t2 - t1);
        return cx.hypot(cz);
    }
    mutual_gmd((0.0, w1), (0.0, t1), (dt, w2), (dz, t2), 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::{Axis, Point3};

    #[test]
    fn relative_gmd_matches_bar_gmd_closely() {
        // Same geometry through both entry points: absolute-coordinate
        // bar_gmd vs origin-anchored relative_gmd agree to quadrature
        // round-off (they evaluate the same integral at shifted nodes).
        let a = Bar::new(Point3::new(0.0, 3.0, 7.0), Axis::X, 100.0, 5.0, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 9.5, 7.0), Axis::X, 100.0, 10.0, 2.0).unwrap();
        let g_abs = bar_gmd(&a, &b);
        let g_rel = relative_gmd(5.0, 2.0, 10.0, 2.0, 6.5, 0.0);
        assert!((g_abs - g_rel).abs() / g_abs < 1e-12, "{g_abs} vs {g_rel}");
    }

    #[test]
    fn relative_gmd_is_translation_invariant_to_the_bit() {
        // The whole point: the same relative placement gives the same bits
        // no matter where the pair sits in absolute space (there is no
        // absolute space in the arguments at all — this asserts that the
        // far-field branch also only sees relative quantities).
        let g1 = relative_gmd(1.0, 2.0, 3.0, 2.0, 10.0, -4.0);
        let g2 = relative_gmd(1.0, 2.0, 3.0, 2.0, 10.0, -4.0);
        assert_eq!(g1.to_bits(), g2.to_bits());
    }

    #[test]
    fn self_gmd_of_square() {
        // Classical: self-GMD of a square of side a is ≈ 0.44705 a.
        let g = self_gmd(1.0, 1.0);
        assert!((g - 0.447).abs() < 0.01);
    }

    #[test]
    fn mutual_gmd_approaches_center_distance_when_far() {
        // Two 1×1 squares 20 apart: GMD ≈ 20 to high accuracy.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (20.0, 1.0), (0.0, 1.0), 8);
        assert!((g - 20.0).abs() / 20.0 < 1e-3, "g = {g}");
    }

    #[test]
    fn mutual_gmd_exceeds_center_distance_for_coplanar_close_pair() {
        // Two coplanar 1×1 squares with small gap: the classical result is
        // that the GMD of two side-by-side squares slightly exceeds... in
        // fact for squares at center distance d the GMD is slightly *less*
        // than d for d barely above touching; we only check it is finite,
        // positive, and within a sane band around the center distance.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.2, 1.0), (0.0, 1.0), 12);
        let center = 1.2 + 0.5 - 0.5; // center-to-center = 1.2 + ... = 1.2? centers at 0.5 and 1.7 → 1.2
        assert!(g > 0.8 * center && g < 1.2 * center, "g = {g}");
    }

    #[test]
    fn grover_tabulated_equal_squares() {
        // Grover (Ch. 3): for two equal squares of side a at center distance
        // d = 2a, ln(GMD/d) ≈ small correction; GMD/d should be within 2 %.
        let g = mutual_gmd((0.0, 1.0), (0.0, 1.0), (2.0, 1.0), (0.0, 1.0), 12);
        assert!((g / 2.0 - 1.0).abs() < 0.02, "g = {g}");
    }

    #[test]
    fn bar_gmd_far_uses_center_distance() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 1.0, 1.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 50.0, 0.0), Axis::X, 100.0, 1.0, 1.0).unwrap();
        assert_eq!(bar_gmd(&a, &b), a.cross_section_distance(&b));
    }

    #[test]
    fn bar_gmd_close_is_numerical_and_sane() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 5.0, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 6.0, 0.0), Axis::X, 100.0, 10.0, 2.0).unwrap();
        let g = bar_gmd(&a, &b);
        let center = a.cross_section_distance(&b);
        assert!(
            g > 0.0 && (g / center - 1.0).abs() < 0.25,
            "g = {g}, c = {center}"
        );
    }

    #[test]
    fn gmd_is_symmetric() {
        let a = Bar::new(Point3::new(0.0, 0.0, 0.0), Axis::X, 100.0, 3.0, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, 4.0, 1.0), Axis::X, 100.0, 2.0, 1.0).unwrap();
        assert!((bar_gmd(&a, &b) - bar_gmd(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn gmd_converges_with_order() {
        let g8 = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.5, 1.0), (0.0, 1.0), 8);
        let g16 = mutual_gmd((0.0, 1.0), (0.0, 1.0), (1.5, 1.0), (0.0, 1.0), 16);
        assert!((g8 - g16).abs() / g16 < 1e-3);
    }
}
