//! PEEC field solver — the Raphael RI3 / FastHenry substitute.
//!
//! The paper pre-characterizes inductance tables by invoking the 3-D
//! extractor Raphael RI3 on one- and two-trace subproblems. This crate is a
//! from-scratch PEEC (Partial Element Equivalent Circuit) solver providing
//! the same capabilities for rectangular on-chip conductors:
//!
//! * [`partial`] — closed-form partial self/mutual inductance of rectangular
//!   bars (Neumann integral with geometric-mean-distance cross-sections) and
//!   DC resistance,
//! * [`gmd`] — numerical geometric mean distances via Gauss–Legendre
//!   quadrature,
//! * [`mesh`] — volume-filament decomposition for skin/proximity effect at
//!   the significant frequency `0.32/t_r`,
//! * [`solver`] — [`PartialSystem`]: conductor-level `R(ω)`/`L(ω)` from the
//!   filament-level complex impedance solve,
//! * [`fastop`] — the matrix-free fast path behind [`SolverBackend`]:
//!   batched translation-invariance kernel caching, cluster-tree near/far
//!   splitting with an H² nested-basis far field (flat ACA for blocks not
//!   strictly beyond the GMD far threshold), and a block-diagonal
//!   preconditioner for the `rlcx_numeric::gmres` Krylov solve,
//! * [`loop_l`] — loop-inductance reduction with the paper's *merged ground
//!   node at the far end* convention, plus ground-plane strip meshing and
//!   the [`BlockExtractor`] convenience layer used by the table builder,
//! * [`network`] — a complex-frequency branch network (AC MNA) used to solve
//!   whole interconnect *trees* flat, the reference the linear-cascading
//!   experiment (Table I) compares against,
//! * [`tree_solver`] — assembles a [`rlcx_geom::SegmentTree`] of three-wire
//!   segments into such a network and reports its driving-point loop
//!   inductance.
//!
//! # Example: Figure 1's coplanar waveguide
//!
//! ```
//! use rlcx_geom::{Block, Stackup};
//! use rlcx_peec::BlockExtractor;
//!
//! # fn main() -> Result<(), rlcx_peec::PeecError> {
//! let stackup = Stackup::hp_six_metal_copper();
//! let block = Block::coplanar_waveguide(1000.0, 10.0, 5.0, 1.0)?;
//! let extractor = BlockExtractor::new(stackup, 5)?.frequency(3.2e9);
//! let result = extractor.extract(&block)?;
//! // One signal trace → a 1×1 loop-inductance matrix, order ~0.5 nH/mm.
//! assert!(result.loop_l[(0, 0)] > 0.1e-9 && result.loop_l[(0, 0)] < 2e-9);
//! # Ok(())
//! # }
//! ```

pub mod fastop;
pub mod gmd;
mod h2;
pub mod loop_l;
pub mod mesh;
pub mod network;
pub mod partial;
pub mod solver;
pub mod tree_solver;

mod error;

pub use error::PeecError;
pub use fastop::{iterative_cutover, Compression, FastOpOptions, SolverBackend, ITERATIVE_CUTOVER};
pub use loop_l::{BlockExtraction, BlockExtractor, PlaneSpec};
pub use mesh::MeshSpec;
pub use network::{AcNetwork, Branch};
pub use solver::{Conductor, PartialSystem};
pub use tree_solver::FlatTreeSolver;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, PeecError>;
