use rlcx_geom::GeomError;
use rlcx_numeric::NumericError;
use std::fmt;

/// Error type for the PEEC field solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PeecError {
    /// A geometry error from the input structures.
    Geometry(GeomError),
    /// A numerical error (singular system, bad shapes, …).
    Numeric(NumericError),
    /// The requested extraction needs conductors that are not parallel or do
    /// not share axial spans.
    IncompatibleConductors {
        /// Description of the incompatibility.
        what: String,
    },
    /// Conductor or partition index out of range.
    BadIndex {
        /// Description of the offending index set.
        what: String,
    },
    /// The signal/ground partition was invalid (empty, overlapping, …).
    BadPartition {
        /// Description of the defect.
        what: String,
    },
    /// A frequency or mesh parameter was out of its legal domain.
    InvalidParameter {
        /// Description of the violated precondition.
        what: String,
    },
}

impl fmt::Display for PeecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeecError::Geometry(e) => write!(f, "geometry error: {e}"),
            PeecError::Numeric(e) => write!(f, "numeric error: {e}"),
            PeecError::IncompatibleConductors { what } => {
                write!(f, "incompatible conductors: {what}")
            }
            PeecError::BadIndex { what } => write!(f, "index out of range: {what}"),
            PeecError::BadPartition { what } => write!(f, "bad signal/ground partition: {what}"),
            PeecError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for PeecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PeecError::Geometry(e) => Some(e),
            PeecError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for PeecError {
    fn from(e: GeomError) -> Self {
        PeecError::Geometry(e)
    }
}

impl From<NumericError> for PeecError {
    fn from(e: NumericError) -> Self {
        PeecError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_sources() {
        let e = PeecError::from(GeomError::TooFewTraces { got: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("geometry"));
        let e = PeecError::from(NumericError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PeecError>();
    }
}
