//! Matrix-free fast PEEC operator: translation-invariance kernel caching,
//! hierarchical low-rank far-field compression (flat ACA or H² nested
//! bases) and a block-diagonal preconditioner for the GMRES solve path.
//!
//! The dense path in [`crate::solver`] assembles the full `n × n` filament
//! impedance matrix (`n²` GMD quadratures) and factors it (`n³`). This
//! module replaces both costs for large meshes:
//!
//! * **Kernel caching** ([`KernelCache`]) — a uniform filament mesh of
//!   parallel equal-span conductors contains only `O(#distinct offsets)`
//!   geometrically distinct pairs. Partial-inductance values are memoized
//!   by the canonicalized relative placement `(w1, t1, w2, t2, dt, dz)`,
//!   collapsing the `O(n²)` quadratures of the dense assembly to the few
//!   thousand distinct ones. Block fills go through
//!   [`KernelCache::fill_block`], which batches every missing quadrature
//!   into one [`crate::partial::mutual_partial_batch`] call so the hot
//!   4-D GMD loop runs over contiguous SoA lanes.
//! * **Near/far splitting** ([`FastZOperator`]) — a bisection cluster
//!   tree over cross-section centers partitions the interaction matrix;
//!   blocks whose clusters are well separated (gap ≥ η·max diam) are
//!   compressed, everything else stays exact. Two far-field
//!   representations exist, selected by [`Compression`]:
//!   [`Compression::FlatAca`] gives every admissible block its own
//!   low-rank `U·Vᵀ` factor by adaptive cross approximation (`O(n log n)`
//!   far memory), while the default [`Compression::H2`] routes admissible
//!   pairs whose gap also clears `4×` the largest cross-section dimension
//!   (so every filament pair is in the far GMD branch) into an H²
//!   structure with *nested* per-cluster bases and tiny skeleton coupling
//!   matrices — see [`crate::h2`] — dropping far-field memory and matvec
//!   cost toward `O(n)`. Admissible pairs too close for the all-far
//!   guarantee keep the flat ACA treatment. The operator then applies
//!   `Z·x = R∘x + jω(Lp·x)` without ever forming `Lp`.
//! * **Preconditioning** ([`BlockDiagPrecond`]) — the per-conductor
//!   diagonal blocks of `Z` (the dominant couplings) are factored exactly
//!   with [`CLuDecomposition`] and applied as a right preconditioner, so
//!   GMRES converges in tens of iterations and minimizes the *true*
//!   residual.
//!
//! [`SolverBackend`] selects between this path and the dense one;
//! [`SolverBackend::Auto`] keeps dense below [`iterative_cutover`]
//! filaments (default [`ITERATIVE_CUTOVER`], overridable via the
//! `RLCX_PEEC_CUTOVER` environment variable) so all pre-existing results
//! stay bit-identical.
//!
//! Metrics: `fastop.kernel.hits` / `fastop.kernel.misses` and
//! `aca.rank_cap.hits` (counters), `aca.rank` / `h2.basis.rank`
//! (histograms), `fastop.near.blocks` / `fastop.far.blocks` /
//! `fastop.dense.fallbacks` / `fastop.far.mem.f64` (gauges), the
//! `aca.rank` / `h2.rank` series channels, and `gmres.iters` (histogram,
//! one observation per Krylov solve).

use crate::gmd;
use crate::h2;
use crate::partial::{
    dc_resistance, mutual_partial_batch, mutual_partial_relative, self_partial, PairGeom,
};
use crate::{PeecError, Result};
use rlcx_geom::Bar;
use rlcx_numeric::gmres::{gmres, GmresOptions, LinearOperator};
use rlcx_numeric::lu::CLuDecomposition;
use rlcx_numeric::pool::{self, SendPtr};
use rlcx_numeric::{obs, par_map, thread_count, CMatrix, Complex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Which engine [`crate::PartialSystem`] uses for the filament-level solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Always assemble and factor the dense filament matrix.
    Dense,
    /// Always use the matrix-free GMRES path.
    Iterative,
    /// Dense below [`iterative_cutover`] filaments (bit-identical to the
    /// pre-existing dense results), iterative above.
    #[default]
    Auto,
}

/// Default filament count at which [`SolverBackend::Auto`] switches to the
/// iterative path. Below this the dense LU is fast and its results are the
/// historical reference; above it the O(n³) factor dominates and the
/// Krylov path wins. Override per process with the `RLCX_PEEC_CUTOVER`
/// environment variable — see [`iterative_cutover`].
pub const ITERATIVE_CUTOVER: usize = 420;

/// The effective [`SolverBackend::Auto`] cutover: `RLCX_PEEC_CUTOVER` when
/// set to a positive integer, [`ITERATIVE_CUTOVER`] otherwise. The batched
/// kernels shift the dense/iterative crossover per machine, so deployments
/// can tune it without a rebuild. Invalid values warn once on stderr and
/// fall back to the default; the variable is read once per process.
pub fn iterative_cutover() -> usize {
    static CUTOVER: OnceLock<usize> = OnceLock::new();
    *CUTOVER.get_or_init(|| cutover_from(std::env::var("RLCX_PEEC_CUTOVER").ok().as_deref()))
}

/// Pure parsing core of [`iterative_cutover`]: `None` or an empty string
/// means "unset", anything that is not a positive integer is rejected with
/// a warning.
fn cutover_from(raw: Option<&str>) -> usize {
    let Some(s) = raw else {
        return ITERATIVE_CUTOVER;
    };
    let trimmed = s.trim();
    if trimmed.is_empty() {
        return ITERATIVE_CUTOVER;
    }
    match trimmed.parse::<usize>() {
        Ok(v) if v >= 1 => v,
        _ => {
            eprintln!(
                "rlcx: ignoring invalid RLCX_PEEC_CUTOVER={s:?} \
                 (expected a positive integer); using default {ITERATIVE_CUTOVER}"
            );
            ITERATIVE_CUTOVER
        }
    }
}

impl SolverBackend {
    /// Resolves the backend choice for a system of `n_filaments`.
    pub fn is_iterative(self, n_filaments: usize) -> bool {
        match self {
            SolverBackend::Dense => false,
            SolverBackend::Iterative => true,
            SolverBackend::Auto => n_filaments >= iterative_cutover(),
        }
    }

    /// Stable lowercase name, used in cache keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Dense => "dense",
            SolverBackend::Iterative => "iterative",
            SolverBackend::Auto => "auto",
        }
    }
}

/// Far-field representation used by [`FastZOperator`] for admissible
/// cluster pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Flat H-matrix: every admissible block stores its own ACA `U·Vᵀ`
    /// factor.
    FlatAca,
    /// H² nested bases: one skeleton basis per cluster (children reused
    /// through transfer operators) plus small per-pair coupling matrices;
    /// admissible pairs that fail the stricter all-far-branch test stay on
    /// the flat ACA path.
    #[default]
    H2,
}

/// Tuning knobs for [`FastZOperator`].
#[derive(Debug, Clone, Copy)]
pub struct FastOpOptions {
    /// Cluster-tree leaf size (filaments per undivided cluster).
    pub leaf_size: usize,
    /// Admissibility parameter: clusters are far when their bounding-box
    /// gap is at least `eta ×` the larger box diameter.
    pub eta: f64,
    /// ACA / H² skeleton stopping tolerance relative to the estimated
    /// block (or sampled far-field) norm.
    pub aca_tol: f64,
    /// Rank cap per far block and per H² cluster basis; ACA blocks that
    /// fail to converge within it fall back to exact storage.
    pub max_rank: usize,
    /// Far-field representation for admissible pairs.
    pub compression: Compression,
    /// Far-field sample budget per cluster for the H² skeleton build.
    pub h2_sample_cap: usize,
}

impl Default for FastOpOptions {
    fn default() -> Self {
        FastOpOptions {
            leaf_size: 48,
            eta: 1.0,
            aca_tol: 1e-10,
            max_rank: 96,
            compression: Compression::H2,
            h2_sample_cap: 256,
        }
    }
}

impl FastOpOptions {
    /// Default options with the flat-ACA far field (the pre-H² behaviour).
    pub fn flat_aca() -> Self {
        FastOpOptions {
            compression: Compression::FlatAca,
            ..FastOpOptions::default()
        }
    }
}

/// Memoizes partial-inductance kernel evaluations by relative placement.
///
/// Valid for filament meshes in which every filament shares one axial span
/// (the configuration [`crate::PartialSystem`] enforces for frequency
/// solves): the mutual partial inductance of a pair then depends only on
/// the two cross-sections and their transverse/vertical offset. Keys are
/// the raw `f64` bit patterns of `(w1, t1, w2, t2, dt, dz)` canonicalized
/// under pair swap (`(w2, t2, w1, t1, −dt, −dz)` describes the same pair),
/// so each distinct geometry is evaluated exactly once and always in the
/// same orientation — lookups are deterministic to the bit.
///
/// The key carries a seventh element: the near/far GMD branch taken from
/// [`gmd::cross_section_is_far`] on the actual bars. Regular meshes place
/// pairs exactly at the 4× threshold, where absolute and relative center
/// distances can round to opposite sides; deciding the branch the same way
/// the dense path does (and caching per branch) keeps the memoized kernel
/// within quadrature round-off of [`crate::partial::mutual_partial`]
/// instead of picking up the ~1e-3 far-field approximation jump.
///
/// # Concurrency
///
/// The cache is shared by reference across the parallel operator build:
/// its maps live behind [`CACHE_SHARDS`] mutex shards selected by a
/// deterministic hash of the key, so tasks filling different blocks
/// contend only when their keys collide mod the shard count. The shard
/// count is fixed — independent of `RLCX_THREADS` — and every cached
/// value is a pure function of its key, so the stored bits (and anything
/// computed from them) are identical for any thread count even when two
/// tasks race the first touch of a key. Only the hit/miss *counters* can
/// differ under such a race (both tasks count a miss); they are
/// diagnostics, not part of the deterministic contract. On the serial
/// path the accounting is exactly the historical one.
pub struct KernelCache {
    length_um: f64,
    shards: [Mutex<CacheShard>; CACHE_SHARDS],
}

/// Lock shards of [`KernelCache`]. Fixed (never derived from the thread
/// count) so cache layout and per-shard counter attribution are the same
/// for every run of the same workload.
const CACHE_SHARDS: usize = 16;

#[derive(Default)]
struct CacheShard {
    mutuals: HashMap<[u64; 7], f64>,
    selves: HashMap<[u64; 2], f64>,
    hits: u64,
    misses: u64,
}

/// Deterministic shard index of a key: FNV-1a over the key words. Stable
/// across runs, platforms and thread counts.
#[inline]
fn shard_of(key: &[u64]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in key {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % CACHE_SHARDS as u64) as usize
}

/// Reusable scratch of [`KernelCache::fill_block`], thread-local so the
/// hot near-field path stops rebuilding its `pending_pos` HashMap (and
/// friends) on every call: after warm-up a fully-cached fill performs no
/// heap allocation at all (`tests/obs_overhead.rs` asserts this).
struct FillScratch {
    pending: Vec<([u64; 7], PairGeom)>,
    pending_pos: HashMap<[u64; 7], usize>,
    slots: Vec<(usize, usize)>,
    geoms: Vec<PairGeom>,
    vals: Vec<f64>,
}

thread_local! {
    static FILL_SCRATCH: RefCell<FillScratch> = RefCell::new(FillScratch {
        pending: Vec::new(),
        pending_pos: HashMap::new(),
        slots: Vec::new(),
        geoms: Vec::new(),
        vals: Vec::new(),
    });
}

/// Maps `-0.0` to `+0.0` before taking bits so the two zero encodings
/// cannot split one geometric key in two.
#[inline]
fn key_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

/// Canonical cache key and evaluation geometry of a filament pair: the
/// lexicographically smaller of the two swap-equivalent keys, so the
/// cached bits are independent of encounter order.
fn canonical_mutual(a: &Bar, b: &Bar) -> ([u64; 7], PairGeom) {
    let (ta, _) = a.transverse_span();
    let (za, _) = a.vertical_span();
    let (tb, _) = b.transverse_span();
    let (zb, _) = b.vertical_span();
    let fwd = (
        a.width(),
        a.thickness(),
        b.width(),
        b.thickness(),
        tb - ta,
        zb - za,
    );
    let rev = (fwd.2, fwd.3, fwd.0, fwd.1, -fwd.4, -fwd.5);
    let far = gmd::cross_section_is_far(a, b);
    let keyed = |g: (f64, f64, f64, f64, f64, f64)| {
        [
            key_bits(g.0),
            key_bits(g.1),
            key_bits(g.2),
            key_bits(g.3),
            key_bits(g.4),
            key_bits(g.5),
            far as u64,
        ]
    };
    let (kf, kr) = (keyed(fwd), keyed(rev));
    let (key, g) = if kr < kf { (kr, rev) } else { (kf, fwd) };
    (
        key,
        PairGeom {
            w1: g.0,
            t1: g.1,
            w2: g.2,
            t2: g.3,
            dt: g.4,
            dz: g.5,
            far,
        },
    )
}

impl KernelCache {
    /// Creates a cache for filaments of shared length `length_um` (µm).
    pub fn new(length_um: f64) -> Self {
        KernelCache {
            length_um,
            shards: std::array::from_fn(|_| Mutex::new(CacheShard::default())),
        }
    }

    fn shard(&self, si: usize) -> MutexGuard<'_, CacheShard> {
        // Cached values are pure functions of their keys, so a panic
        // mid-insert cannot leave a shard inconsistent; keep going.
        self.shards[si].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared axial span (µm) this cache evaluates kernels for.
    pub fn length_um(&self) -> f64 {
        self.length_um
    }

    /// Partial self inductance (H) of a filament, memoized by its
    /// cross-section. Identical bits to [`self_partial`] — the formula is
    /// already translation-invariant.
    pub fn self_l(&self, fil: &Bar) -> f64 {
        let key = [key_bits(fil.width()), key_bits(fil.thickness())];
        let si = shard_of(&key);
        {
            let mut s = self.shard(si);
            if let Some(&v) = s.selves.get(&key) {
                s.hits += 1;
                return v;
            }
            s.misses += 1;
        }
        // Quadrature outside the lock: a first touch must not stall
        // other tasks' lookups in the same shard.
        let v = self_partial(fil);
        self.shard(si).selves.insert(key, v);
        v
    }

    /// Partial mutual inductance (H) between two filaments of the mesh,
    /// memoized by canonicalized relative placement.
    pub fn mutual_l(&self, a: &Bar, b: &Bar) -> f64 {
        let (key, g) = canonical_mutual(a, b);
        let si = shard_of(&key);
        {
            let mut s = self.shard(si);
            if let Some(&v) = s.mutuals.get(&key) {
                s.hits += 1;
                return v;
            }
            s.misses += 1;
        }
        let v = mutual_partial_relative(self.length_um, g.w1, g.t1, g.w2, g.t2, g.dt, g.dz, g.far);
        self.shard(si).mutuals.insert(key, v);
        v
    }

    /// Lp kernel entry for filaments `i`, `j` of `fils` (self on the
    /// diagonal). Single-entry counterpart of [`KernelCache::fill_block`].
    pub fn entry(&self, fils: &[Bar], i: usize, j: usize) -> f64 {
        if i == j {
            self.self_l(&fils[i])
        } else {
            self.mutual_l(&fils[i], &fils[j])
        }
    }

    /// Fills the row-major `rows × cols` kernel block into `out`, batching
    /// every *distinct missing* geometry into one
    /// [`mutual_partial_batch`] call so the 4-D GMD quadratures run over
    /// contiguous SoA lanes instead of one scalar call per entry.
    ///
    /// Values and (serial) hit/miss accounting are identical to looping
    /// [`KernelCache::entry`] over the block in row-major order: the first
    /// encounter of a missing geometry counts as the miss, duplicates
    /// within the same fill count as hits, and the batched quadrature is
    /// bit-identical to the scalar one. Scratch state is thread-local and
    /// reused across calls, so a fully-cached fill does not allocate.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `out.len() != rows.len() * cols.len()`.
    pub fn fill_block(&self, fils: &[Bar], rows: &[usize], cols: &[usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), rows.len() * cols.len());
        FILL_SCRATCH
            .with(|cell| self.fill_block_with(fils, rows, cols, out, &mut cell.borrow_mut()));
    }

    fn fill_block_with(
        &self,
        fils: &[Bar],
        rows: &[usize],
        cols: &[usize],
        out: &mut [f64],
        scratch: &mut FillScratch,
    ) {
        let nc = cols.len();
        // Distinct geometries to evaluate, in first-encounter order, and
        // the out slots each one scatters to. Clearing keeps capacity.
        scratch.pending.clear();
        scratch.pending_pos.clear();
        scratch.slots.clear();
        // Hit/miss deltas per shard, flushed once at the end so the scan
        // takes each shard lock O(1) times instead of O(entries).
        let mut delta = [(0u64, 0u64); CACHE_SHARDS];
        for (a, &i) in rows.iter().enumerate() {
            for (b, &j) in cols.iter().enumerate() {
                let o = a * nc + b;
                if i == j {
                    out[o] = self.self_l(&fils[i]);
                    continue;
                }
                let (key, g) = canonical_mutual(&fils[i], &fils[j]);
                let si = shard_of(&key);
                let cached = self.shard(si).mutuals.get(&key).copied();
                if let Some(v) = cached {
                    delta[si].0 += 1;
                    out[o] = v;
                } else if let Some(&pi) = scratch.pending_pos.get(&key) {
                    delta[si].0 += 1;
                    scratch.slots.push((o, pi));
                } else {
                    delta[si].1 += 1;
                    let pi = scratch.pending.len();
                    scratch.pending_pos.insert(key, pi);
                    scratch.pending.push((key, g));
                    scratch.slots.push((o, pi));
                }
            }
        }
        for (si, &(h, m)) in delta.iter().enumerate() {
            if h != 0 || m != 0 {
                let mut s = self.shard(si);
                s.hits += h;
                s.misses += m;
            }
        }
        if scratch.pending.is_empty() {
            return;
        }
        scratch.geoms.clear();
        scratch
            .geoms
            .extend(scratch.pending.iter().map(|&(_, g)| g));
        scratch.vals.clear();
        scratch.vals.resize(scratch.geoms.len(), 0.0);
        mutual_partial_batch(self.length_um, &scratch.geoms, &mut scratch.vals);
        for ((key, _), &v) in scratch.pending.iter().zip(&scratch.vals) {
            self.shard(shard_of(key)).mutuals.insert(*key, v);
        }
        for &(o, pi) in scratch.slots.iter() {
            out[o] = scratch.vals[pi];
        }
    }

    /// `(hits, misses)` counters accumulated so far, summed over the
    /// shards in fixed shard order.
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for si in 0..CACHE_SHARDS {
            let s = self.shard(si);
            hits += s.hits;
            misses += s.misses;
        }
        (hits, misses)
    }

    /// Number of distinct kernel evaluations stored.
    pub fn distinct(&self) -> usize {
        (0..CACHE_SHARDS)
            .map(|si| {
                let s = self.shard(si);
                s.mutuals.len() + s.selves.len()
            })
            .sum()
    }
}

/// One node of the flattened [`ClusterTree`]: a contiguous `perm` range
/// with its cross-section bounding box `(tmin, tmax, zmin, zmax)`, the
/// largest member cross-section dimension (for the all-far-branch H²
/// admissibility test) and the depth in the tree.
pub(crate) struct ClusterNode {
    start: usize,
    end: usize,
    bbox: [f64; 4],
    smax: f64,
    level: usize,
    children: Option<(usize, usize)>,
}

/// Bisection cluster tree over filament cross-section centers, flattened
/// into a permutation plus an array of nodes. Node ids are allocated
/// parent-before-children, so ascending id order is a valid top-down
/// traversal and descending order a valid bottom-up one — the invariant
/// the H² upward/downward passes rely on.
pub(crate) struct ClusterTree {
    perm: Vec<usize>,
    nodes: Vec<ClusterNode>,
}

impl ClusterTree {
    /// Builds the tree for centers `pts` with per-filament maximum
    /// cross-section dimensions `dims`. Median split along the longer box
    /// side; ties broken by index so the tree is deterministic for any
    /// input order (and identical to the recursive per-vector splits it
    /// replaces).
    fn build(pts: &[(f64, f64)], dims: &[f64], leaf_size: usize) -> Self {
        let mut tree = ClusterTree {
            perm: (0..pts.len()).collect(),
            nodes: Vec::new(),
        };
        tree.build_node(0, pts.len(), 0, pts, dims, leaf_size.max(1));
        tree
    }

    fn build_node(
        &mut self,
        start: usize,
        end: usize,
        level: usize,
        pts: &[(f64, f64)],
        dims: &[f64],
        leaf_size: usize,
    ) -> usize {
        let mut bbox = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let mut smax = 0.0f64;
        for &i in &self.perm[start..end] {
            let (t, z) = pts[i];
            bbox[0] = bbox[0].min(t);
            bbox[1] = bbox[1].max(t);
            bbox[2] = bbox[2].min(z);
            bbox[3] = bbox[3].max(z);
            smax = smax.max(dims[i]);
        }
        let id = self.nodes.len();
        self.nodes.push(ClusterNode {
            start,
            end,
            bbox,
            smax,
            level,
            children: None,
        });
        if end - start > leaf_size {
            let along_t = (bbox[1] - bbox[0]) >= (bbox[3] - bbox[2]);
            self.perm[start..end].sort_unstable_by(|&a, &b| {
                let ka = if along_t { pts[a].0 } else { pts[a].1 };
                let kb = if along_t { pts[b].0 } else { pts[b].1 };
                ka.total_cmp(&kb).then(a.cmp(&b))
            });
            let mid = start + (end - start) / 2;
            let l = self.build_node(start, mid, level + 1, pts, dims, leaf_size);
            let r = self.build_node(mid, end, level + 1, pts, dims, leaf_size);
            self.nodes[id].children = Some((l, r));
        }
        id
    }

    /// Number of nodes (root included).
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Filament indices of cluster `c`, in tree order.
    pub(crate) fn indices(&self, c: usize) -> &[usize] {
        &self.perm[self.nodes[c].start..self.nodes[c].end]
    }

    /// Child node ids of `c`, `None` for leaves.
    pub(crate) fn children(&self, c: usize) -> Option<(usize, usize)> {
        self.nodes[c].children
    }

    /// Depth of `c` (root is 0).
    pub(crate) fn level(&self, c: usize) -> usize {
        self.nodes[c].level
    }

    fn len(&self, c: usize) -> usize {
        self.nodes[c].end - self.nodes[c].start
    }

    fn diameter(&self, c: usize) -> f64 {
        let b = &self.nodes[c].bbox;
        (b[1] - b[0]).hypot(b[3] - b[2])
    }

    fn gap(&self, a: usize, b: usize) -> f64 {
        let (ba, bb) = (&self.nodes[a].bbox, &self.nodes[b].bbox);
        let gap = |lo1: f64, hi1: f64, lo2: f64, hi2: f64| (lo2 - hi1).max(lo1 - hi2).max(0.0);
        gap(ba[0], ba[1], bb[0], bb[1]).hypot(gap(ba[2], ba[3], bb[2], bb[3]))
    }

    fn smax(&self, c: usize) -> f64 {
        self.nodes[c].smax
    }
}

/// Exact block: `k[(ri, cj)]` in row-major over `rows × cols`. Diagonal
/// blocks (`diag`) have `rows == cols` and include the self terms;
/// off-diagonal blocks are applied together with their transpose.
struct NearBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    k: Vec<f64>,
    diag: bool,
}

/// Low-rank far block `K ≈ Σ_r u_r v_rᵀ`, `u` stored rank-major over rows
/// and `v` rank-major over cols. Applied together with its transpose.
struct FarBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    u: Vec<f64>,
    v: Vec<f64>,
    rank: usize,
}

/// Build/compression statistics of a [`FastZOperator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastOpStats {
    /// Kernel-cache hits during assembly.
    pub kernel_hits: u64,
    /// Kernel-cache misses (distinct quadratures actually evaluated).
    pub kernel_misses: u64,
    /// Largest ACA rank over all flat far blocks.
    pub max_rank: usize,
    /// Exact blocks stored.
    pub near_blocks: usize,
    /// Flat-ACA compressed blocks stored.
    pub far_blocks: usize,
    /// ACA runs that reached the rank cap (whether or not the final step
    /// converged).
    pub rank_cap_hits: usize,
    /// Admissible blocks that failed to converge within the rank cap and
    /// were stored exactly.
    pub dense_fallbacks: usize,
    /// Fraction of the full `n²` interaction pairs covered by compressed
    /// (flat or H²) far blocks.
    pub compressed_fraction: f64,
    /// Total `f64`s stored by the far field (flat `U`/`V` factors plus H²
    /// bases, transfers and couplings).
    pub far_mem_f64: usize,
    /// Admissible pairs stored as H² couplings.
    pub h2_couplings: usize,
    /// Largest H² cluster-basis rank.
    pub h2_max_rank: usize,
    /// `f64`s stored by the H² part alone.
    pub h2_mem_f64: usize,
}

/// The matrix-free filament impedance operator `Z = diag(R) + jω·Lp`.
pub struct FastZOperator {
    n: usize,
    omega: f64,
    r: Vec<f64>,
    tree: ClusterTree,
    near: Vec<NearBlock>,
    far: Vec<FarBlock>,
    h2: Option<h2::H2Field>,
    stats: FastOpStats,
}

impl FastZOperator {
    /// Assembles the operator for filaments `fils` (shared axial span) with
    /// resistivities `rhos` at angular frequency `omega`, reusing (and
    /// filling) `kernel` for every partial-inductance evaluation.
    ///
    /// The build is parallel over independent units of work — leaf
    /// diagonal blocks, inadmissible near pairs, admissible ACA pairs,
    /// and the H² level passes — sharded by block/cluster index, with
    /// every result scattered back in index order. Each unit is a pure
    /// computation (kernel values are pure functions of their keys), so
    /// the assembled operator is bit-identical for any `RLCX_THREADS`.
    pub fn new(
        fils: &[Bar],
        rhos: &[f64],
        omega: f64,
        kernel: &KernelCache,
        opts: &FastOpOptions,
    ) -> Self {
        let n = fils.len();
        let r: Vec<f64> = fils
            .iter()
            .zip(rhos)
            .map(|(f, &rho)| dc_resistance(f, rho))
            .collect();
        let pts: Vec<(f64, f64)> = fils
            .iter()
            .map(|f| {
                let (t0, t1) = f.transverse_span();
                let (z0, z1) = f.vertical_span();
                (0.5 * (t0 + t1), 0.5 * (z0 + z1))
            })
            .collect();
        let dims: Vec<f64> = fils.iter().map(|f| f.width().max(f.thickness())).collect();
        let tree = ClusterTree::build(&pts, &dims, opts.leaf_size);

        let mut diag_leaves: Vec<usize> = Vec::new();
        let mut near_pairs: Vec<(usize, usize)> = Vec::new();
        let mut far_pairs: Vec<(usize, usize)> = Vec::new();
        let mut h2_pairs: Vec<(usize, usize)> = Vec::new();
        collect_diag(
            &tree,
            0,
            opts,
            &mut diag_leaves,
            &mut near_pairs,
            &mut far_pairs,
            &mut h2_pairs,
        );

        let hits0 = kernel.stats();
        let mut stats = FastOpStats::default();
        // Exact leaf diagonal blocks: one independent fill per leaf,
        // collected in leaf-index order.
        let mut near: Vec<NearBlock> = par_map(diag_leaves.len(), |di| {
            let idx = tree.indices(diag_leaves[di]);
            let m = idx.len();
            let mut k = vec![0.0; m * m];
            kernel.fill_block(fils, idx, idx, &mut k);
            NearBlock {
                rows: idx.to_vec(),
                cols: idx.to_vec(),
                k,
                diag: true,
            }
        });
        // Inadmissible off-diagonal pairs: exact, one block per pair.
        near.extend(par_map(near_pairs.len(), |pi| {
            let (a, b) = near_pairs[pi];
            dense_block(tree.indices(a), tree.indices(b), fils, kernel)
        }));
        // Admissible pairs: ACA per pair in parallel, then a serial
        // post-pass in pair-index order for the order-sensitive pieces —
        // stats accumulation and the obs pushes — so metrics and series
        // steps come out exactly as the serial build emitted them.
        let aca_blocks: Vec<(Option<FarBlock>, bool)> = par_map(far_pairs.len(), |pi| {
            let (a, b) = far_pairs[pi];
            aca_block(tree.indices(a), tree.indices(b), fils, kernel, opts)
        });
        let mut far = Vec::new();
        let mut far_covered = 0usize;
        for ((block, capped), &(a, b)) in aca_blocks.into_iter().zip(&far_pairs) {
            if capped {
                stats.rank_cap_hits += 1;
            }
            match block {
                Some(fb) => {
                    stats.max_rank = stats.max_rank.max(fb.rank);
                    obs::observe("aca.rank", fb.rank as f64);
                    obs::series_push("aca.rank", far.len() as f64, fb.rank as f64);
                    far_covered += fb.rows.len() * fb.cols.len();
                    stats.far_mem_f64 += fb.rank * (fb.rows.len() + fb.cols.len());
                    far.push(fb);
                }
                None => {
                    stats.dense_fallbacks += 1;
                    near.push(dense_block(tree.indices(a), tree.indices(b), fils, kernel));
                }
            }
        }
        let h2_field = if h2_pairs.is_empty() {
            None
        } else {
            let params = h2::H2Params {
                tol: opts.aca_tol,
                max_rank: opts.max_rank,
                sample_cap: opts.h2_sample_cap.max(1),
            };
            let field = h2::build(&tree, &h2_pairs, &pts, kernel.length_um(), &params);
            for &(a, b) in &h2_pairs {
                far_covered += tree.len(a) * tree.len(b);
            }
            stats.h2_couplings = field.coupling_count();
            stats.h2_max_rank = field.max_rank;
            stats.h2_mem_f64 = field.mem_f64;
            stats.far_mem_f64 += field.mem_f64;
            Some(field)
        };
        let (h1, m1) = kernel.stats();
        stats.kernel_hits = h1 - hits0.0;
        stats.kernel_misses = m1 - hits0.1;
        stats.near_blocks = near.len();
        stats.far_blocks = far.len();
        stats.compressed_fraction = if n == 0 {
            0.0
        } else {
            // Off-diagonal far blocks cover their transpose too.
            (2 * far_covered) as f64 / (n * n) as f64
        };
        obs::counter_add("fastop.kernel.hits", stats.kernel_hits);
        obs::counter_add("fastop.kernel.misses", stats.kernel_misses);
        obs::counter_add("aca.rank_cap.hits", stats.rank_cap_hits as u64);
        obs::gauge_set("fastop.near.blocks", stats.near_blocks as f64);
        obs::gauge_set("fastop.far.blocks", stats.far_blocks as f64);
        obs::gauge_set("fastop.dense.fallbacks", stats.dense_fallbacks as f64);
        obs::gauge_set("fastop.far.mem.f64", stats.far_mem_f64 as f64);

        FastZOperator {
            n,
            omega,
            r,
            tree,
            near,
            far,
            h2: h2_field,
            stats,
        }
    }

    /// Build/compression statistics.
    pub fn stats(&self) -> &FastOpStats {
        &self.stats
    }

    /// Per-filament series resistances (Ω).
    pub fn resistances(&self) -> &[f64] {
        &self.r
    }
}

fn dense_block(rows: &[usize], cols: &[usize], fils: &[Bar], kernel: &KernelCache) -> NearBlock {
    let mut k = vec![0.0; rows.len() * cols.len()];
    kernel.fill_block(fils, rows, cols, &mut k);
    NearBlock {
        rows: rows.to_vec(),
        cols: cols.to_vec(),
        k,
        diag: false,
    }
}

/// Walks the diagonal of the block cluster tree, collecting exact leaf
/// diagonal blocks and delegating off-diagonal pairs to [`collect_pair`].
#[allow(clippy::too_many_arguments)]
fn collect_diag(
    tree: &ClusterTree,
    c: usize,
    opts: &FastOpOptions,
    diag: &mut Vec<usize>,
    near: &mut Vec<(usize, usize)>,
    far: &mut Vec<(usize, usize)>,
    h2: &mut Vec<(usize, usize)>,
) {
    match tree.children(c) {
        None => diag.push(c),
        Some((l, r)) => {
            collect_diag(tree, l, opts, diag, near, far, h2);
            collect_diag(tree, r, opts, diag, near, far, h2);
            collect_pair(tree, l, r, opts, near, far, h2);
        }
    }
}

/// Partitions an off-diagonal cluster pair into admissible (far) and
/// inadmissible-leaf (near) blocks. Pairs are only ever generated in one
/// orientation; the apply loop adds the transpose contribution.
///
/// Admissible pairs whose gap also *strictly* clears `4×` the largest
/// member cross-section dimension go to the H² list when enabled: the
/// center distance of every filament pair in such a block then exceeds the
/// [`gmd::cross_section_is_far`] threshold, so the whole block lives in
/// the smooth far-branch kernel the nested bases are built on. Admissible
/// pairs without that guarantee keep the flat ACA treatment.
#[allow(clippy::too_many_arguments)]
fn collect_pair(
    tree: &ClusterTree,
    a: usize,
    b: usize,
    opts: &FastOpOptions,
    near: &mut Vec<(usize, usize)>,
    far: &mut Vec<(usize, usize)>,
    h2: &mut Vec<(usize, usize)>,
) {
    let gap = tree.gap(a, b);
    let admissible = gap >= opts.eta * tree.diameter(a).max(tree.diameter(b))
        && tree.len(a).min(tree.len(b)) >= 16;
    if admissible {
        let all_far = gap > 4.0 * tree.smax(a).max(tree.smax(b));
        if opts.compression == Compression::H2 && all_far {
            h2.push((a, b));
        } else {
            far.push((a, b));
        }
        return;
    }
    match (tree.children(a), tree.children(b)) {
        (None, None) => near.push((a, b)),
        (Some((a1, a2)), None) => {
            collect_pair(tree, a1, b, opts, near, far, h2);
            collect_pair(tree, a2, b, opts, near, far, h2);
        }
        (None, Some((b1, b2))) => {
            collect_pair(tree, a, b1, opts, near, far, h2);
            collect_pair(tree, a, b2, opts, near, far, h2);
        }
        (Some((a1, a2)), Some((b1, b2))) => {
            collect_pair(tree, a1, b1, opts, near, far, h2);
            collect_pair(tree, a1, b2, opts, near, far, h2);
            collect_pair(tree, a2, b1, opts, near, far, h2);
            collect_pair(tree, a2, b2, opts, near, far, h2);
        }
    }
}

/// Compresses the `rows × cols` kernel block with partially pivoted ACA.
/// Returns `(None, _)` when the block fails to reach `aca_tol` within
/// `max_rank` terms (the caller stores it exactly instead); the second
/// element reports whether the run reached the rank cap at all.
fn aca_block(
    rows: &[usize],
    cols: &[usize],
    fils: &[Bar],
    kernel: &KernelCache,
    opts: &FastOpOptions,
) -> (Option<FarBlock>, bool) {
    let (nr, nc) = (rows.len(), cols.len());
    let max_rank = opts.max_rank.min(nr.min(nc));
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut row_used = vec![false; nr];
    let mut norm2_est = 0.0f64;
    let mut i_star = 0usize;
    let mut converged = false;
    let mut rrow = vec![0.0f64; nc];
    let mut ucol = vec![0.0f64; nr];

    while us.len() < max_rank {
        // Residual of the pivot row.
        kernel.fill_block(fils, &rows[i_star..i_star + 1], cols, &mut rrow);
        for (u, v) in us.iter().zip(&vs) {
            let ui = u[i_star];
            for (rj, vj) in rrow.iter_mut().zip(v) {
                *rj -= ui * vj;
            }
        }
        row_used[i_star] = true;
        let (j_star, pivot) = rrow
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
            .map(|(j, &p)| (j, p))
            .unwrap_or((0, 0.0));
        if pivot.abs() < 1e-300 {
            // Degenerate pivot row; try the next unused one.
            match row_used.iter().position(|&u| !u) {
                Some(next) => {
                    i_star = next;
                    continue;
                }
                None => {
                    converged = true;
                    break;
                }
            }
        }
        let v: Vec<f64> = rrow.iter().map(|&r| r / pivot).collect();
        kernel.fill_block(fils, rows, &cols[j_star..j_star + 1], &mut ucol);
        let mut u = ucol.clone();
        for (uk, vk) in us.iter().zip(&vs) {
            let vj = vk[j_star];
            for (ui, uki) in u.iter_mut().zip(uk) {
                *ui -= vj * uki;
            }
        }
        let unorm2: f64 = u.iter().map(|x| x * x).sum();
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        let mut cross = 0.0;
        for (uk, vk) in us.iter().zip(&vs) {
            let du: f64 = u.iter().zip(uk).map(|(x, y)| x * y).sum();
            let dv: f64 = v.iter().zip(vk).map(|(x, y)| x * y).sum();
            cross += du * dv;
        }
        norm2_est = (norm2_est + unorm2 * vnorm2 + 2.0 * cross).max(0.0);
        let step = (unorm2 * vnorm2).sqrt();
        us.push(u);
        vs.push(v);
        if step <= opts.aca_tol * norm2_est.sqrt() {
            converged = true;
            break;
        }
        // Next pivot row: largest |u| entry among unused rows.
        let last_u = us.last().expect("just pushed");
        let Some(next) = (0..nr)
            .filter(|&i| !row_used[i])
            .max_by(|&x, &y| last_u[x].abs().total_cmp(&last_u[y].abs()))
        else {
            // Ran out of unused pivot rows before converging (not a rank
            // cap hit).
            return (None, false);
        };
        i_star = next;
    }
    let capped = us.len() >= max_rank;
    if !converged {
        return (None, capped);
    }
    let rank = us.len();
    let mut u = vec![0.0; rank * nr];
    let mut v = vec![0.0; rank * nc];
    for (k, (uk, vk)) in us.iter().zip(&vs).enumerate() {
        u[k * nr..(k + 1) * nr].copy_from_slice(uk);
        v[k * nc..(k + 1) * nc].copy_from_slice(vk);
    }
    (
        Some(FarBlock {
            rows: rows.to_vec(),
            cols: cols.to_vec(),
            u,
            v,
            rank,
        }),
        capped,
    )
}

/// Fixed number of partial accumulation vectors in the parallel apply.
/// Deliberately *not* derived from the thread count: block→shard
/// assignment (`block index mod APPLY_SHARDS`) and the shard-order
/// reduction fix the f64 addition order, so the matvec bits never change
/// with `RLCX_THREADS`.
const APPLY_SHARDS: usize = 16;

impl LinearOperator<Complex> for FastZOperator {
    fn dim(&self) -> usize {
        self.n
    }

    /// `y = R∘x + jω·(Lp·x)` with `Lp` applied block-wise: exact blocks
    /// (and their transposes), `U(Vᵀx)` for flat-compressed blocks, and
    /// the H² upward/coupling/downward passes for nested-basis pairs.
    ///
    /// Parallel and deterministic: every near/far block accumulates into
    /// the partial vector of shard `block_index % APPLY_SHARDS` (blocks
    /// within a shard in index order), the H² field produces its own
    /// contribution, and the final combine reduces the partials per
    /// element in fixed shard order — identical bits for 1 or N threads.
    fn apply(&self, x: &[Complex], y: &mut [Complex]) {
        let threads = thread_count();
        let ws: Vec<Vec<Complex>> = par_map(APPLY_SHARDS, |s| {
            let mut w = vec![Complex::ZERO; self.n];
            for (bi, blk) in self.near.iter().enumerate() {
                if bi % APPLY_SHARDS != s {
                    continue;
                }
                let nc = blk.cols.len();
                for (ri, &i) in blk.rows.iter().enumerate() {
                    let krow = &blk.k[ri * nc..(ri + 1) * nc];
                    let mut acc = Complex::ZERO;
                    for (kij, &j) in krow.iter().zip(&blk.cols) {
                        acc += x[j] * *kij;
                    }
                    w[i] += acc;
                    if !blk.diag {
                        let xi = x[i];
                        for (kij, &j) in krow.iter().zip(&blk.cols) {
                            w[j] += xi * *kij;
                        }
                    }
                }
            }
            for (bi, blk) in self.far.iter().enumerate() {
                if bi % APPLY_SHARDS != s {
                    continue;
                }
                let (nr, nc) = (blk.rows.len(), blk.cols.len());
                for k in 0..blk.rank {
                    let vk = &blk.v[k * nc..(k + 1) * nc];
                    let uk = &blk.u[k * nr..(k + 1) * nr];
                    let mut t = Complex::ZERO;
                    for (vj, &j) in vk.iter().zip(&blk.cols) {
                        t += x[j] * *vj;
                    }
                    for (ui, &i) in uk.iter().zip(&blk.rows) {
                        w[i] += t * *ui;
                    }
                    // Transpose contribution.
                    let mut s = Complex::ZERO;
                    for (ui, &i) in uk.iter().zip(&blk.rows) {
                        s += x[i] * *ui;
                    }
                    for (vj, &j) in vk.iter().zip(&blk.cols) {
                        w[j] += s * *vj;
                    }
                }
            }
            w
        });
        let wh2: Option<Vec<Complex>> = self.h2.as_ref().map(|h2| {
            let mut w = vec![Complex::ZERO; self.n];
            h2.apply(&self.tree, x, &mut w);
            w
        });
        // Elementwise reduce + combine over disjoint index ranges; the
        // per-element sum runs shard 0, 1, …, then H² — a fixed order.
        let chunk = self.n.div_ceil(APPLY_SHARDS).max(1);
        let y_ptr = SendPtr::new(y.as_mut_ptr());
        pool::run(self.n.div_ceil(chunk), threads, |c| {
            let base = c * chunk;
            let end = (base + chunk).min(self.n);
            for i in base..end {
                let mut wi = Complex::ZERO;
                for w in &ws {
                    wi += w[i];
                }
                if let Some(wh) = &wh2 {
                    wi += wh[i];
                }
                let v =
                    x[i].scale(self.r[i]) + Complex::new(-self.omega * wi.im, self.omega * wi.re);
                // SAFETY: chunk `c` exclusively owns `y[base..end)`.
                unsafe { *y_ptr.get().add(i) = v };
            }
        });
    }
}

/// Exact per-conductor diagonal blocks of `Z`, LU-factored, applied as a
/// right preconditioner `M⁻¹`.
pub struct BlockDiagPrecond {
    blocks: Vec<(Vec<usize>, CLuDecomposition)>,
    n: usize,
}

impl BlockDiagPrecond {
    /// Factors the diagonal block of every conductor (`owner` maps each
    /// filament to its conductor, `0..n_cond`), one parallel task per
    /// conductor; each block's fill and LU are serial within the task, so
    /// the factors are bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// [`PeecError::Numeric`] if a conductor block is singular.
    pub fn new(
        fils: &[Bar],
        rhos: &[f64],
        owner: &[usize],
        n_cond: usize,
        omega: f64,
        kernel: &KernelCache,
    ) -> Result<Self> {
        let factor = |ci: usize| -> Result<(Vec<usize>, CLuDecomposition)> {
            let idx: Vec<usize> = (0..fils.len()).filter(|&i| owner[i] == ci).collect();
            let m = idx.len();
            let mut k = vec![0.0; m * m];
            kernel.fill_block(fils, &idx, &idx, &mut k);
            let mut z = CMatrix::zeros(m, m);
            for (a, &i) in idx.iter().enumerate() {
                for b in 0..m {
                    z[(a, b)] = if a == b {
                        Complex::new(dc_resistance(&fils[i], rhos[i]), omega * k[a * m + a])
                    } else {
                        Complex::from_imag(omega * k[a * m + b])
                    };
                }
            }
            Ok((idx, CLuDecomposition::new(&z)?))
        };
        let mut blocks = Vec::with_capacity(n_cond);
        for built in par_map(n_cond, factor) {
            blocks.push(built?);
        }
        Ok(BlockDiagPrecond {
            blocks,
            n: fils.len(),
        })
    }

    /// `y = M⁻¹·x` (block-wise gather / solve / scatter).
    pub fn solve_into(&self, x: &[Complex], y: &mut [Complex]) {
        for (idx, lu) in &self.blocks {
            let xb: Vec<Complex> = idx.iter().map(|&i| x[i]).collect();
            let mut yb = vec![Complex::ZERO; idx.len()];
            lu.solve_into(&xb, &mut yb)
                .expect("factored block solve cannot fail on matching dims");
            for (&i, &v) in idx.iter().zip(&yb) {
                y[i] = v;
            }
        }
    }
}

/// The right-preconditioned operator `x ↦ Z·(M⁻¹·x)` GMRES iterates on.
struct RightPreconditioned<'a> {
    z: &'a FastZOperator,
    m: &'a BlockDiagPrecond,
}

impl LinearOperator<Complex> for RightPreconditioned<'_> {
    fn dim(&self) -> usize {
        self.z.dim()
    }
    fn apply(&self, x: &[Complex], y: &mut [Complex]) {
        let mut t = vec![Complex::ZERO; x.len()];
        self.m.solve_into(x, &mut t);
        self.z.apply(&t, y);
    }
}

/// Krylov tolerances used by the iterative impedance path: tight enough
/// that backend disagreement stays below 1e-9 relative.
pub fn impedance_gmres_options() -> GmresOptions {
    GmresOptions {
        restart: 100,
        max_iterations: 2000,
        rel_tol: 1e-12,
        abs_tol: 0.0,
    }
}

/// Conductor-level admittance `Y = A·Z⁻¹·Aᵀ` via one preconditioned GMRES
/// solve per conductor (`A` is the filament-ownership incidence matrix):
/// column `j` of `Z⁻¹·Aᵀ` is the filament current vector under a unit
/// voltage on conductor `j`, and summing it per conductor gives `Y`'s
/// column `j`.
///
/// # Errors
///
/// [`PeecError::Numeric`] with
/// [`rlcx_numeric::NumericError::DidNotConverge`] if any solve exhausts
/// its iteration budget.
pub fn conductor_admittance(
    op: &FastZOperator,
    pre: &BlockDiagPrecond,
    owner: &[usize],
    n_cond: usize,
) -> Result<CMatrix> {
    let n = op.dim();
    debug_assert_eq!(owner.len(), n);
    debug_assert_eq!(pre.n, n);
    let sys = RightPreconditioned { z: op, m: pre };
    let opts = impedance_gmres_options();
    let mut y = CMatrix::zeros(n_cond, n_cond);
    for cj in 0..n_cond {
        let rhs: Vec<Complex> = owner
            .iter()
            .map(|&ci| {
                if ci == cj {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        let sol = gmres(&sys, &rhs, None, &opts)
            .map_err(PeecError::from)?
            .into_converged()
            .map_err(PeecError::from)?;
        // Un-precondition: the iterate solves Z·M⁻¹·u = b, so x = M⁻¹·u.
        let mut x = vec![Complex::ZERO; n];
        pre.solve_into(&sol.x, &mut x);
        for (i, xi) in x.iter().enumerate() {
            y[(owner[i], cj)] += *xi;
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;
    use rlcx_geom::{Axis, Point3};

    /// A grid of well-separated filament clusters for ACA behaviour tests:
    /// two 6×6 filament bundles `sep` µm apart.
    fn two_bundles(sep: f64) -> (Vec<Bar>, Vec<f64>) {
        let mut fils = Vec::new();
        for base in [0.0, sep] {
            for i in 0..6 {
                for j in 0..6 {
                    let b = Bar::new(
                        Point3::new(0.0, base + i as f64 * 1.0, 10.0 + j as f64 * 1.0),
                        Axis::X,
                        1000.0,
                        0.9,
                        0.9,
                    )
                    .unwrap();
                    fils.push(b);
                }
            }
        }
        let rhos = vec![RHO_COPPER; fils.len()];
        (fils, rhos)
    }

    fn centers_and_dims(fils: &[Bar]) -> (Vec<(f64, f64)>, Vec<f64>) {
        let pts = fils
            .iter()
            .map(|f| {
                let (t0, t1) = f.transverse_span();
                let (z0, z1) = f.vertical_span();
                (0.5 * (t0 + t1), 0.5 * (z0 + z1))
            })
            .collect();
        let dims = fils.iter().map(|f| f.width().max(f.thickness())).collect();
        (pts, dims)
    }

    /// Dense reference `Z` for a filament set, assembled the way the dense
    /// solver path does.
    fn dense_z(fils: &[Bar], rhos: &[f64], omega: f64) -> CMatrix {
        let n = fils.len();
        let mut z = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                z[(i, j)] = if i == j {
                    Complex::new(
                        dc_resistance(&fils[i], rhos[i]),
                        omega * self_partial(&fils[i]),
                    )
                } else {
                    Complex::from_imag(omega * crate::partial::mutual_partial(&fils[i], &fils[j]))
                };
            }
        }
        z
    }

    #[test]
    fn kernel_cache_collapses_uniform_mesh_pairs() {
        let (fils, _) = two_bundles(100.0);
        let kernel = KernelCache::new(1000.0);
        for i in 0..fils.len() {
            for j in 0..fils.len() {
                kernel.entry(&fils, i, j);
            }
        }
        let (hits, misses) = kernel.stats();
        // 72 filaments → 5184 lookups but only O(#offsets) distinct
        // geometries: a 6×6 bundle pair has far fewer distinct offsets
        // than pairs.
        assert_eq!(hits + misses, 72 * 72);
        assert!(
            kernel.distinct() < 600,
            "expected heavy memoization, got {} distinct",
            kernel.distinct()
        );
        assert!(hits > 9 * misses, "hit rate too low: {hits} vs {misses}");
    }

    #[test]
    fn kernel_cache_matches_direct_evaluation() {
        let (fils, _) = two_bundles(40.0);
        let kernel = KernelCache::new(1000.0);
        for (i, a) in fils.iter().enumerate().step_by(7) {
            for (j, b) in fils.iter().enumerate().step_by(5) {
                if i == j {
                    continue;
                }
                let cached = kernel.mutual_l(a, b);
                let direct = crate::partial::mutual_partial(a, b);
                let rel = (cached - direct).abs() / direct.abs();
                assert!(rel < 1e-11, "({i},{j}): {cached} vs {direct}");
            }
        }
    }

    #[test]
    fn fill_block_matches_scalar_entries_bitwise() {
        // The batched block fill must reproduce the scalar entry loop to
        // the bit — values, hit/miss accounting and all.
        let (fils, _) = two_bundles(12.0);
        let rows: Vec<usize> = (0..24).collect();
        let cols: Vec<usize> = (12..60).collect(); // overlaps rows → self terms
        let scalar = KernelCache::new(1000.0);
        let mut reference = vec![0.0; rows.len() * cols.len()];
        for (a, &i) in rows.iter().enumerate() {
            for (b, &j) in cols.iter().enumerate() {
                reference[a * cols.len() + b] = scalar.entry(&fils, i, j);
            }
        }
        let batched = KernelCache::new(1000.0);
        let mut block = vec![0.0; rows.len() * cols.len()];
        batched.fill_block(&fils, &rows, &cols, &mut block);
        for (o, (b, r)) in block.iter().zip(&reference).enumerate() {
            assert_eq!(b.to_bits(), r.to_bits(), "entry {o}: {b} vs {r}");
        }
        assert_eq!(batched.stats(), scalar.stats(), "hit/miss accounting");
        assert_eq!(batched.distinct(), scalar.distinct());
    }

    #[test]
    fn aca_rank_stays_small_for_well_separated_clusters() {
        // Satellite: rank growth sanity. Two 36-filament bundles at
        // increasing separation — the interaction becomes smoother, so the
        // ACA rank must stay far below min(nr, nc) = 36 and shrink (weakly)
        // with distance.
        let opts = FastOpOptions::default();
        let mut last_rank = usize::MAX - 2;
        for sep in [40.0, 160.0, 640.0] {
            let (fils, _) = two_bundles(sep);
            let (pts, dims) = centers_and_dims(&fils);
            let tree = ClusterTree::build(&pts, &dims, 36);
            let (a, b) = tree.children(0).expect("72 points split once");
            assert_eq!(tree.len(a), 36);
            assert!(tree.gap(a, b) >= tree.diameter(a).max(tree.diameter(b)));
            let kernel = KernelCache::new(1000.0);
            let (fb, capped) = aca_block(tree.indices(a), tree.indices(b), &fils, &kernel, &opts);
            let fb = fb.expect("ACA must converge");
            assert!(!capped);
            assert!(fb.rank <= 18, "sep {sep}: rank {} too large", fb.rank);
            assert!(
                fb.rank <= last_rank + 2,
                "rank should not grow with separation"
            );
            last_rank = fb.rank;

            // And the factorization reproduces the block to tolerance.
            let mut worst = 0.0f64;
            let mut scale = 0.0f64;
            for (ri, &i) in fb.rows.iter().enumerate() {
                for (cj, &j) in fb.cols.iter().enumerate() {
                    let exact = kernel.entry(&fils, i, j);
                    let mut approx = 0.0;
                    for k in 0..fb.rank {
                        approx += fb.u[k * 36 + ri] * fb.v[k * 36 + cj];
                    }
                    worst = worst.max((exact - approx).abs());
                    scale = scale.max(exact.abs());
                }
            }
            assert!(
                worst <= 1e-6 * scale,
                "sep {sep}: ACA error {worst:.3e} vs scale {scale:.3e}"
            );
        }
    }

    #[test]
    fn fast_operator_matches_dense_apply() {
        // Default options → H² far field. The bundles sit 30 µm apart with
        // 0.9 µm cross-sections, so the admissible pair clears the 4×
        // all-far test and must be stored as H² couplings.
        let (fils, rhos) = two_bundles(30.0);
        let omega = 2.0 * std::f64::consts::PI * 3.2e9;
        let kernel = KernelCache::new(1000.0);
        let op = FastZOperator::new(&fils, &rhos, omega, &kernel, &FastOpOptions::default());
        assert!(
            op.stats().h2_couplings > 0,
            "expected the far pair on the H² path"
        );
        let z = dense_z(&fils, &rhos, omega);
        let n = fils.len();
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
            .collect();
        let mut y_fast = vec![Complex::ZERO; n];
        let mut y_dense = vec![Complex::ZERO; n];
        op.apply(&x, &mut y_fast);
        z.apply(&x, &mut y_dense);
        let scale = y_dense.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (f, d) in y_fast.iter().zip(&y_dense) {
            assert!((*f - *d).abs() <= 1e-9 * scale, "{f} vs {d}");
        }
    }

    #[test]
    fn flat_aca_operator_matches_dense_apply() {
        // The pre-H² far field stays available and correct.
        let (fils, rhos) = two_bundles(30.0);
        let omega = 2.0 * std::f64::consts::PI * 3.2e9;
        let kernel = KernelCache::new(1000.0);
        let op = FastZOperator::new(&fils, &rhos, omega, &kernel, &FastOpOptions::flat_aca());
        assert_eq!(op.stats().h2_couplings, 0);
        assert!(op.stats().far_blocks > 0);
        let z = dense_z(&fils, &rhos, omega);
        let n = fils.len();
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.53).cos(), (i as f64 * 0.29).sin()))
            .collect();
        let mut y_fast = vec![Complex::ZERO; n];
        let mut y_dense = vec![Complex::ZERO; n];
        op.apply(&x, &mut y_fast);
        z.apply(&x, &mut y_dense);
        let scale = y_dense.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (f, d) in y_fast.iter().zip(&y_dense) {
            assert!((*f - *d).abs() <= 1e-9 * scale, "{f} vs {d}");
        }
    }

    #[test]
    fn h2_memory_beats_flat_aca_on_far_field() {
        // The point of nested bases: fewer stored f64s for the same far
        // field. Four bundles in a row give several admissible pairs.
        let mut fils = Vec::new();
        for base in [0.0, 30.0, 60.0, 90.0] {
            for i in 0..6 {
                for j in 0..6 {
                    fils.push(
                        Bar::new(
                            Point3::new(0.0, base + i as f64, 10.0 + j as f64),
                            Axis::X,
                            1000.0,
                            0.9,
                            0.9,
                        )
                        .unwrap(),
                    );
                }
            }
        }
        let rhos = vec![RHO_COPPER; fils.len()];
        let omega = 2.0 * std::f64::consts::PI * 3.2e9;
        let k1 = KernelCache::new(1000.0);
        let h2_op = FastZOperator::new(&fils, &rhos, omega, &k1, &FastOpOptions::default());
        let k2 = KernelCache::new(1000.0);
        let flat_op = FastZOperator::new(&fils, &rhos, omega, &k2, &FastOpOptions::flat_aca());
        assert!(h2_op.stats().h2_couplings > 0);
        assert!(
            h2_op.stats().far_mem_f64 < flat_op.stats().far_mem_f64,
            "H² {} f64 vs flat {} f64",
            h2_op.stats().far_mem_f64,
            flat_op.stats().far_mem_f64
        );
    }

    #[test]
    fn backend_cutover_policy() {
        assert!(!SolverBackend::Dense.is_iterative(100_000));
        assert!(SolverBackend::Iterative.is_iterative(4));
        assert!(!SolverBackend::Auto.is_iterative(ITERATIVE_CUTOVER - 1));
        assert!(SolverBackend::Auto.is_iterative(ITERATIVE_CUTOVER));
        assert_eq!(SolverBackend::Auto.name(), "auto");
    }

    #[test]
    fn cutover_env_parsing() {
        assert_eq!(cutover_from(None), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("")), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("  ")), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("64")), 64);
        assert_eq!(cutover_from(Some(" 1000 ")), 1000);
        assert_eq!(cutover_from(Some("0")), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("-5")), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("fast")), ITERATIVE_CUTOVER);
        assert_eq!(cutover_from(Some("4.2e3")), ITERATIVE_CUTOVER);
    }

    #[test]
    fn cluster_tree_partitions_and_orders_nodes() {
        let (fils, _) = two_bundles(25.0);
        let (pts, dims) = centers_and_dims(&fils);
        let tree = ClusterTree::build(&pts, &dims, 8);
        // Parent-before-children id order, contiguous child ranges.
        for c in 0..tree.node_count() {
            if let Some((l, r)) = tree.children(c) {
                assert!(l > c && r > l, "node order: {c} -> ({l}, {r})");
                assert_eq!(tree.nodes[l].start, tree.nodes[c].start);
                assert_eq!(tree.nodes[l].end, tree.nodes[r].start);
                assert_eq!(tree.nodes[r].end, tree.nodes[c].end);
                assert_eq!(tree.level(l), tree.level(c) + 1);
            } else {
                assert!(tree.len(c) <= 8);
            }
        }
        // The root permutation is a permutation of 0..n.
        let mut seen = tree.indices(0).to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..fils.len()).collect::<Vec<_>>());
        // Every cluster's smax is the grid filament dimension.
        assert_eq!(tree.smax(0), 0.9);
    }
}
