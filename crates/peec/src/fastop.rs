//! Matrix-free fast PEEC operator: translation-invariance kernel caching,
//! hierarchical low-rank far-field compression (ACA) and a block-diagonal
//! preconditioner for the GMRES solve path.
//!
//! The dense path in [`crate::solver`] assembles the full `n × n` filament
//! impedance matrix (`n²` GMD quadratures) and factors it (`n³`). This
//! module replaces both costs for large meshes:
//!
//! * **Kernel caching** ([`KernelCache`]) — a uniform filament mesh of
//!   parallel equal-span conductors contains only `O(#distinct offsets)`
//!   geometrically distinct pairs. Partial-inductance values are memoized
//!   by the canonicalized relative placement `(w1, t1, w2, t2, dt, dz)`,
//!   collapsing the `O(n²)` quadratures of the dense assembly to the few
//!   thousand distinct ones.
//! * **Near/far splitting with ACA** ([`FastZOperator`]) — a bisection
//!   cluster tree over cross-section centers partitions the interaction
//!   matrix; blocks whose clusters are well separated (gap ≥ η·max diam)
//!   are compressed into low-rank `U·Vᵀ` factors by adaptive cross
//!   approximation with partial pivoting, everything else stays exact.
//!   The operator then applies `Z·x = R∘x + jω(Lp·x)` without ever
//!   forming `Lp`.
//! * **Preconditioning** ([`BlockDiagPrecond`]) — the per-conductor
//!   diagonal blocks of `Z` (the dominant couplings) are factored exactly
//!   with [`CLuDecomposition`] and applied as a right preconditioner, so
//!   GMRES converges in tens of iterations and minimizes the *true*
//!   residual.
//!
//! [`SolverBackend`] selects between this path and the dense one;
//! [`SolverBackend::Auto`] keeps dense below [`ITERATIVE_CUTOVER`]
//! filaments so all pre-existing results stay bit-identical.
//!
//! Metrics: `fastop.kernel.hits` / `fastop.kernel.misses` (counters),
//! `aca.rank` (histogram — `max` is the largest far-block rank),
//! `fastop.near.blocks` / `fastop.far.blocks` (gauges) and `gmres.iters`
//! (histogram, one observation per Krylov solve).

use crate::gmd;
use crate::partial::{dc_resistance, mutual_partial_relative, self_partial};
use crate::{PeecError, Result};
use rlcx_geom::Bar;
use rlcx_numeric::gmres::{gmres, GmresOptions, LinearOperator};
use rlcx_numeric::lu::CLuDecomposition;
use rlcx_numeric::{obs, CMatrix, Complex};
use std::collections::HashMap;

/// Which engine [`crate::PartialSystem`] uses for the filament-level solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Always assemble and factor the dense filament matrix.
    Dense,
    /// Always use the matrix-free GMRES path.
    Iterative,
    /// Dense below [`ITERATIVE_CUTOVER`] filaments (bit-identical to the
    /// pre-existing dense results), iterative above.
    #[default]
    Auto,
}

/// Filament count at which [`SolverBackend::Auto`] switches to the
/// iterative path. Below this the dense LU is fast and its results are the
/// historical reference; above it the O(n³) factor dominates and the
/// Krylov path wins.
pub const ITERATIVE_CUTOVER: usize = 420;

impl SolverBackend {
    /// Resolves the backend choice for a system of `n_filaments`.
    pub fn is_iterative(self, n_filaments: usize) -> bool {
        match self {
            SolverBackend::Dense => false,
            SolverBackend::Iterative => true,
            SolverBackend::Auto => n_filaments >= ITERATIVE_CUTOVER,
        }
    }

    /// Stable lowercase name, used in cache keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Dense => "dense",
            SolverBackend::Iterative => "iterative",
            SolverBackend::Auto => "auto",
        }
    }
}

/// Tuning knobs for [`FastZOperator`].
#[derive(Debug, Clone, Copy)]
pub struct FastOpOptions {
    /// Cluster-tree leaf size (filaments per undivided cluster).
    pub leaf_size: usize,
    /// Admissibility parameter: clusters are far when their bounding-box
    /// gap is at least `eta ×` the larger box diameter.
    pub eta: f64,
    /// ACA stopping tolerance relative to the estimated block Frobenius
    /// norm.
    pub aca_tol: f64,
    /// Rank cap per far block; blocks that fail to converge within it fall
    /// back to exact storage.
    pub max_rank: usize,
}

impl Default for FastOpOptions {
    fn default() -> Self {
        FastOpOptions {
            leaf_size: 48,
            eta: 1.0,
            aca_tol: 1e-10,
            max_rank: 96,
        }
    }
}

/// Memoizes partial-inductance kernel evaluations by relative placement.
///
/// Valid for filament meshes in which every filament shares one axial span
/// (the configuration [`crate::PartialSystem`] enforces for frequency
/// solves): the mutual partial inductance of a pair then depends only on
/// the two cross-sections and their transverse/vertical offset. Keys are
/// the raw `f64` bit patterns of `(w1, t1, w2, t2, dt, dz)` canonicalized
/// under pair swap (`(w2, t2, w1, t1, −dt, −dz)` describes the same pair),
/// so each distinct geometry is evaluated exactly once and always in the
/// same orientation — lookups are deterministic to the bit.
///
/// The key carries a seventh element: the near/far GMD branch taken from
/// [`gmd::cross_section_is_far`] on the actual bars. Regular meshes place
/// pairs exactly at the 4× threshold, where absolute and relative center
/// distances can round to opposite sides; deciding the branch the same way
/// the dense path does (and caching per branch) keeps the memoized kernel
/// within quadrature round-off of [`crate::partial::mutual_partial`]
/// instead of picking up the ~1e-3 far-field approximation jump.
pub struct KernelCache {
    length_um: f64,
    mutuals: HashMap<[u64; 7], f64>,
    selves: HashMap<[u64; 2], f64>,
    hits: u64,
    misses: u64,
}

/// Maps `-0.0` to `+0.0` before taking bits so the two zero encodings
/// cannot split one geometric key in two.
#[inline]
fn key_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

impl KernelCache {
    /// Creates a cache for filaments of shared length `length_um` (µm).
    pub fn new(length_um: f64) -> Self {
        KernelCache {
            length_um,
            mutuals: HashMap::new(),
            selves: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Partial self inductance (H) of a filament, memoized by its
    /// cross-section. Identical bits to [`self_partial`] — the formula is
    /// already translation-invariant.
    pub fn self_l(&mut self, fil: &Bar) -> f64 {
        let key = [key_bits(fil.width()), key_bits(fil.thickness())];
        if let Some(&v) = self.selves.get(&key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let v = self_partial(fil);
        self.selves.insert(key, v);
        v
    }

    /// Partial mutual inductance (H) between two filaments of the mesh,
    /// memoized by canonicalized relative placement.
    pub fn mutual_l(&mut self, a: &Bar, b: &Bar) -> f64 {
        let (ta, _) = a.transverse_span();
        let (za, _) = a.vertical_span();
        let (tb, _) = b.transverse_span();
        let (zb, _) = b.vertical_span();
        let fwd = (
            a.width(),
            a.thickness(),
            b.width(),
            b.thickness(),
            tb - ta,
            zb - za,
        );
        let rev = (fwd.2, fwd.3, fwd.0, fwd.1, -fwd.4, -fwd.5);
        let far = gmd::cross_section_is_far(a, b);
        let keyed = |g: (f64, f64, f64, f64, f64, f64)| {
            [
                key_bits(g.0),
                key_bits(g.1),
                key_bits(g.2),
                key_bits(g.3),
                key_bits(g.4),
                key_bits(g.5),
                far as u64,
            ]
        };
        let (kf, kr) = (keyed(fwd), keyed(rev));
        // Canonical orientation: the lexicographically smaller key. The
        // kernel is symmetric under the swap, so both orientations name
        // the same value; always *evaluating* in canonical orientation
        // keeps the cached bits independent of encounter order.
        let (key, g) = if kr < kf { (kr, rev) } else { (kf, fwd) };
        if let Some(&v) = self.mutuals.get(&key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let v = mutual_partial_relative(self.length_um, g.0, g.1, g.2, g.3, g.4, g.5, far);
        self.mutuals.insert(key, v);
        v
    }

    /// Lp kernel entry for filaments `i`, `j` of `fils` (self on the
    /// diagonal).
    fn entry(&mut self, fils: &[Bar], i: usize, j: usize) -> f64 {
        if i == j {
            self.self_l(&fils[i])
        } else {
            self.mutual_l(&fils[i], &fils[j])
        }
    }

    /// `(hits, misses)` counters accumulated so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct kernel evaluations stored.
    pub fn distinct(&self) -> usize {
        self.mutuals.len() + self.selves.len()
    }
}

/// A bisection cluster of filament indices with its cross-section bounding
/// box `(tmin, tmax, zmin, zmax)`.
struct Cluster {
    idx: Vec<usize>,
    bbox: [f64; 4],
    children: Option<Box<(Cluster, Cluster)>>,
}

impl Cluster {
    fn build(mut idx: Vec<usize>, pts: &[(f64, f64)], leaf_size: usize) -> Cluster {
        let mut bbox = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &i in &idx {
            let (t, z) = pts[i];
            bbox[0] = bbox[0].min(t);
            bbox[1] = bbox[1].max(t);
            bbox[2] = bbox[2].min(z);
            bbox[3] = bbox[3].max(z);
        }
        if idx.len() <= leaf_size.max(1) {
            return Cluster {
                idx,
                bbox,
                children: None,
            };
        }
        // Median split along the longer box side; ties broken by index so
        // the tree is deterministic for any input order.
        let along_t = (bbox[1] - bbox[0]) >= (bbox[3] - bbox[2]);
        idx.sort_unstable_by(|&a, &b| {
            let ka = if along_t { pts[a].0 } else { pts[a].1 };
            let kb = if along_t { pts[b].0 } else { pts[b].1 };
            ka.total_cmp(&kb).then(a.cmp(&b))
        });
        let right = idx.split_off(idx.len() / 2);
        let left = Cluster::build(idx, pts, leaf_size);
        let right = Cluster::build(right, pts, leaf_size);
        let mut merged = left.idx.clone();
        merged.extend_from_slice(&right.idx);
        Cluster {
            idx: merged,
            bbox,
            children: Some(Box::new((left, right))),
        }
    }

    fn diameter(&self) -> f64 {
        (self.bbox[1] - self.bbox[0]).hypot(self.bbox[3] - self.bbox[2])
    }

    fn gap_to(&self, other: &Cluster) -> f64 {
        let gap = |lo1: f64, hi1: f64, lo2: f64, hi2: f64| (lo2 - hi1).max(lo1 - hi2).max(0.0);
        gap(self.bbox[0], self.bbox[1], other.bbox[0], other.bbox[1]).hypot(gap(
            self.bbox[2],
            self.bbox[3],
            other.bbox[2],
            other.bbox[3],
        ))
    }
}

/// Exact block: `k[(ri, cj)]` in row-major over `rows × cols`. Diagonal
/// blocks (`diag`) have `rows == cols` and include the self terms;
/// off-diagonal blocks are applied together with their transpose.
struct NearBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    k: Vec<f64>,
    diag: bool,
}

/// Low-rank far block `K ≈ Σ_r u_r v_rᵀ`, `u` stored rank-major over rows
/// and `v` rank-major over cols. Applied together with its transpose.
struct FarBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    u: Vec<f64>,
    v: Vec<f64>,
    rank: usize,
}

/// Build/compression statistics of a [`FastZOperator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastOpStats {
    /// Kernel-cache hits during assembly.
    pub kernel_hits: u64,
    /// Kernel-cache misses (distinct quadratures actually evaluated).
    pub kernel_misses: u64,
    /// Largest ACA rank over all far blocks.
    pub max_rank: usize,
    /// Exact blocks stored.
    pub near_blocks: usize,
    /// Compressed blocks stored.
    pub far_blocks: usize,
    /// Admissible blocks that hit the rank cap and were stored exactly.
    pub dense_fallbacks: usize,
    /// Fraction of the full `n²` interaction pairs covered by far blocks.
    pub compressed_fraction: f64,
}

/// The matrix-free filament impedance operator `Z = diag(R) + jω·Lp`.
pub struct FastZOperator {
    n: usize,
    omega: f64,
    r: Vec<f64>,
    near: Vec<NearBlock>,
    far: Vec<FarBlock>,
    stats: FastOpStats,
}

impl FastZOperator {
    /// Assembles the operator for filaments `fils` (shared axial span) with
    /// resistivities `rhos` at angular frequency `omega`, reusing (and
    /// filling) `kernel` for every partial-inductance evaluation.
    pub fn new(
        fils: &[Bar],
        rhos: &[f64],
        omega: f64,
        kernel: &mut KernelCache,
        opts: &FastOpOptions,
    ) -> Self {
        let n = fils.len();
        let r: Vec<f64> = fils
            .iter()
            .zip(rhos)
            .map(|(f, &rho)| dc_resistance(f, rho))
            .collect();
        let pts: Vec<(f64, f64)> = fils
            .iter()
            .map(|f| {
                let (t0, t1) = f.transverse_span();
                let (z0, z1) = f.vertical_span();
                (0.5 * (t0 + t1), 0.5 * (z0 + z1))
            })
            .collect();
        let root = Cluster::build((0..n).collect(), &pts, opts.leaf_size);

        let mut near_pairs: Vec<(&Cluster, &Cluster)> = Vec::new();
        let mut diag_leaves: Vec<&Cluster> = Vec::new();
        let mut far_pairs: Vec<(&Cluster, &Cluster)> = Vec::new();
        collect_diag(
            &root,
            opts,
            &mut diag_leaves,
            &mut near_pairs,
            &mut far_pairs,
        );

        let hits0 = kernel.stats();
        let mut near = Vec::new();
        let mut far = Vec::new();
        let mut stats = FastOpStats::default();
        for c in diag_leaves {
            let m = c.idx.len();
            let mut k = vec![0.0; m * m];
            for (a, &i) in c.idx.iter().enumerate() {
                for (b, &j) in c.idx.iter().enumerate() {
                    k[a * m + b] = kernel.entry(fils, i, j);
                }
            }
            near.push(NearBlock {
                rows: c.idx.clone(),
                cols: c.idx.clone(),
                k,
                diag: true,
            });
        }
        for (a, b) in near_pairs {
            near.push(dense_block(a, b, fils, kernel));
        }
        let mut far_covered = 0usize;
        for (a, b) in far_pairs {
            match aca_block(a, b, fils, kernel, opts) {
                Some(fb) => {
                    stats.max_rank = stats.max_rank.max(fb.rank);
                    obs::observe("aca.rank", fb.rank as f64);
                    obs::series_push("aca.rank", far.len() as f64, fb.rank as f64);
                    far_covered += fb.rows.len() * fb.cols.len();
                    far.push(fb);
                }
                None => {
                    stats.dense_fallbacks += 1;
                    near.push(dense_block(a, b, fils, kernel));
                }
            }
        }
        let (h1, m1) = kernel.stats();
        stats.kernel_hits = h1 - hits0.0;
        stats.kernel_misses = m1 - hits0.1;
        stats.near_blocks = near.len();
        stats.far_blocks = far.len();
        stats.compressed_fraction = if n == 0 {
            0.0
        } else {
            // Off-diagonal far blocks cover their transpose too.
            (2 * far_covered) as f64 / (n * n) as f64
        };
        obs::counter_add("fastop.kernel.hits", stats.kernel_hits);
        obs::counter_add("fastop.kernel.misses", stats.kernel_misses);
        obs::gauge_set("fastop.near.blocks", stats.near_blocks as f64);
        obs::gauge_set("fastop.far.blocks", stats.far_blocks as f64);

        FastZOperator {
            n,
            omega,
            r,
            near,
            far,
            stats,
        }
    }

    /// Build/compression statistics.
    pub fn stats(&self) -> &FastOpStats {
        &self.stats
    }

    /// Per-filament series resistances (Ω).
    pub fn resistances(&self) -> &[f64] {
        &self.r
    }
}

fn dense_block(a: &Cluster, b: &Cluster, fils: &[Bar], kernel: &mut KernelCache) -> NearBlock {
    let (nr, nc) = (a.idx.len(), b.idx.len());
    let mut k = vec![0.0; nr * nc];
    for (ri, &i) in a.idx.iter().enumerate() {
        for (cj, &j) in b.idx.iter().enumerate() {
            k[ri * nc + cj] = kernel.entry(fils, i, j);
        }
    }
    NearBlock {
        rows: a.idx.clone(),
        cols: b.idx.clone(),
        k,
        diag: false,
    }
}

/// Walks the diagonal of the block cluster tree, collecting exact leaf
/// diagonal blocks and delegating off-diagonal pairs to [`collect_pair`].
fn collect_diag<'a>(
    c: &'a Cluster,
    opts: &FastOpOptions,
    diag: &mut Vec<&'a Cluster>,
    near: &mut Vec<(&'a Cluster, &'a Cluster)>,
    far: &mut Vec<(&'a Cluster, &'a Cluster)>,
) {
    match &c.children {
        None => diag.push(c),
        Some(ch) => {
            let (l, r) = (&ch.0, &ch.1);
            collect_diag(l, opts, diag, near, far);
            collect_diag(r, opts, diag, near, far);
            collect_pair(l, r, opts, near, far);
        }
    }
}

/// Partitions an off-diagonal cluster pair into admissible (far) and
/// inadmissible-leaf (near) blocks. Pairs are only ever generated in one
/// orientation; the apply loop adds the transpose contribution.
fn collect_pair<'a>(
    a: &'a Cluster,
    b: &'a Cluster,
    opts: &FastOpOptions,
    near: &mut Vec<(&'a Cluster, &'a Cluster)>,
    far: &mut Vec<(&'a Cluster, &'a Cluster)>,
) {
    let admissible = a.gap_to(b) >= opts.eta * a.diameter().max(b.diameter())
        && a.idx.len().min(b.idx.len()) >= 16;
    if admissible {
        far.push((a, b));
        return;
    }
    match (&a.children, &b.children) {
        (None, None) => near.push((a, b)),
        (Some(ac), None) => {
            collect_pair(&ac.0, b, opts, near, far);
            collect_pair(&ac.1, b, opts, near, far);
        }
        (None, Some(bc)) => {
            collect_pair(a, &bc.0, opts, near, far);
            collect_pair(a, &bc.1, opts, near, far);
        }
        (Some(ac), Some(bc)) => {
            collect_pair(&ac.0, &bc.0, opts, near, far);
            collect_pair(&ac.0, &bc.1, opts, near, far);
            collect_pair(&ac.1, &bc.0, opts, near, far);
            collect_pair(&ac.1, &bc.1, opts, near, far);
        }
    }
}

/// Compresses the `a × b` kernel block with partially pivoted ACA.
/// Returns `None` when the block fails to reach `aca_tol` within
/// `max_rank` terms (the caller stores it exactly instead).
fn aca_block(
    a: &Cluster,
    b: &Cluster,
    fils: &[Bar],
    kernel: &mut KernelCache,
    opts: &FastOpOptions,
) -> Option<FarBlock> {
    let rows = &a.idx;
    let cols = &b.idx;
    let (nr, nc) = (rows.len(), cols.len());
    let max_rank = opts.max_rank.min(nr.min(nc));
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut row_used = vec![false; nr];
    let mut norm2_est = 0.0f64;
    let mut i_star = 0usize;
    let mut converged = false;

    while us.len() < max_rank {
        // Residual of the pivot row.
        let mut rrow: Vec<f64> = (0..nc)
            .map(|j| kernel.entry(fils, rows[i_star], cols[j]))
            .collect();
        for (u, v) in us.iter().zip(&vs) {
            let ui = u[i_star];
            for (rj, vj) in rrow.iter_mut().zip(v) {
                *rj -= ui * vj;
            }
        }
        row_used[i_star] = true;
        let (j_star, pivot) = rrow
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
            .map(|(j, &p)| (j, p))
            .unwrap_or((0, 0.0));
        if pivot.abs() < 1e-300 {
            // Degenerate pivot row; try the next unused one.
            match row_used.iter().position(|&u| !u) {
                Some(next) => {
                    i_star = next;
                    continue;
                }
                None => {
                    converged = true;
                    break;
                }
            }
        }
        let v: Vec<f64> = rrow.iter().map(|&r| r / pivot).collect();
        let mut u: Vec<f64> = (0..nr)
            .map(|i| kernel.entry(fils, rows[i], cols[j_star]))
            .collect();
        for (uk, vk) in us.iter().zip(&vs) {
            let vj = vk[j_star];
            for (ui, uki) in u.iter_mut().zip(uk) {
                *ui -= vj * uki;
            }
        }
        let unorm2: f64 = u.iter().map(|x| x * x).sum();
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        let mut cross = 0.0;
        for (uk, vk) in us.iter().zip(&vs) {
            let du: f64 = u.iter().zip(uk).map(|(x, y)| x * y).sum();
            let dv: f64 = v.iter().zip(vk).map(|(x, y)| x * y).sum();
            cross += du * dv;
        }
        norm2_est = (norm2_est + unorm2 * vnorm2 + 2.0 * cross).max(0.0);
        let step = (unorm2 * vnorm2).sqrt();
        us.push(u);
        vs.push(v);
        if step <= opts.aca_tol * norm2_est.sqrt() {
            converged = true;
            break;
        }
        // Next pivot row: largest |u| entry among unused rows.
        let last_u = us.last().expect("just pushed");
        i_star = (0..nr)
            .filter(|&i| !row_used[i])
            .max_by(|&x, &y| last_u[x].abs().total_cmp(&last_u[y].abs()))?;
    }
    if !converged {
        return None;
    }
    let rank = us.len();
    let mut u = vec![0.0; rank * nr];
    let mut v = vec![0.0; rank * nc];
    for (k, (uk, vk)) in us.iter().zip(&vs).enumerate() {
        u[k * nr..(k + 1) * nr].copy_from_slice(uk);
        v[k * nc..(k + 1) * nc].copy_from_slice(vk);
    }
    Some(FarBlock {
        rows: rows.clone(),
        cols: cols.clone(),
        u,
        v,
        rank,
    })
}

impl LinearOperator<Complex> for FastZOperator {
    fn dim(&self) -> usize {
        self.n
    }

    /// `y = R∘x + jω·(Lp·x)` with `Lp` applied block-wise: exact blocks
    /// (and their transposes) plus `U(Vᵀx)` for compressed blocks.
    fn apply(&self, x: &[Complex], y: &mut [Complex]) {
        let mut w = vec![Complex::ZERO; self.n];
        for blk in &self.near {
            let nc = blk.cols.len();
            for (ri, &i) in blk.rows.iter().enumerate() {
                let krow = &blk.k[ri * nc..(ri + 1) * nc];
                let mut acc = Complex::ZERO;
                for (kij, &j) in krow.iter().zip(&blk.cols) {
                    acc += x[j] * *kij;
                }
                w[i] += acc;
                if !blk.diag {
                    let xi = x[i];
                    for (kij, &j) in krow.iter().zip(&blk.cols) {
                        w[j] += xi * *kij;
                    }
                }
            }
        }
        for blk in &self.far {
            let (nr, nc) = (blk.rows.len(), blk.cols.len());
            for k in 0..blk.rank {
                let vk = &blk.v[k * nc..(k + 1) * nc];
                let uk = &blk.u[k * nr..(k + 1) * nr];
                let mut t = Complex::ZERO;
                for (vj, &j) in vk.iter().zip(&blk.cols) {
                    t += x[j] * *vj;
                }
                for (ui, &i) in uk.iter().zip(&blk.rows) {
                    w[i] += t * *ui;
                }
                // Transpose contribution.
                let mut s = Complex::ZERO;
                for (ui, &i) in uk.iter().zip(&blk.rows) {
                    s += x[i] * *ui;
                }
                for (vj, &j) in vk.iter().zip(&blk.cols) {
                    w[j] += s * *vj;
                }
            }
        }
        for ((yi, &xi), (&ri, &wi)) in y.iter_mut().zip(x).zip(self.r.iter().zip(&w)) {
            *yi = xi.scale(ri) + Complex::new(-self.omega * wi.im, self.omega * wi.re);
        }
    }
}

/// Exact per-conductor diagonal blocks of `Z`, LU-factored, applied as a
/// right preconditioner `M⁻¹`.
pub struct BlockDiagPrecond {
    blocks: Vec<(Vec<usize>, CLuDecomposition)>,
    n: usize,
}

impl BlockDiagPrecond {
    /// Factors the diagonal block of every conductor (`owner` maps each
    /// filament to its conductor, `0..n_cond`).
    ///
    /// # Errors
    ///
    /// [`PeecError::Numeric`] if a conductor block is singular.
    pub fn new(
        fils: &[Bar],
        rhos: &[f64],
        owner: &[usize],
        n_cond: usize,
        omega: f64,
        kernel: &mut KernelCache,
    ) -> Result<Self> {
        let mut blocks = Vec::with_capacity(n_cond);
        for ci in 0..n_cond {
            let idx: Vec<usize> = (0..fils.len()).filter(|&i| owner[i] == ci).collect();
            let m = idx.len();
            let mut z = CMatrix::zeros(m, m);
            for (a, &i) in idx.iter().enumerate() {
                for (b, &j) in idx.iter().enumerate() {
                    z[(a, b)] = if a == b {
                        Complex::new(
                            dc_resistance(&fils[i], rhos[i]),
                            omega * kernel.self_l(&fils[i]),
                        )
                    } else {
                        Complex::from_imag(omega * kernel.mutual_l(&fils[i], &fils[j]))
                    };
                }
            }
            blocks.push((idx, CLuDecomposition::new(&z)?));
        }
        Ok(BlockDiagPrecond {
            blocks,
            n: fils.len(),
        })
    }

    /// `y = M⁻¹·x` (block-wise gather / solve / scatter).
    pub fn solve_into(&self, x: &[Complex], y: &mut [Complex]) {
        for (idx, lu) in &self.blocks {
            let xb: Vec<Complex> = idx.iter().map(|&i| x[i]).collect();
            let mut yb = vec![Complex::ZERO; idx.len()];
            lu.solve_into(&xb, &mut yb)
                .expect("factored block solve cannot fail on matching dims");
            for (&i, &v) in idx.iter().zip(&yb) {
                y[i] = v;
            }
        }
    }
}

/// The right-preconditioned operator `x ↦ Z·(M⁻¹·x)` GMRES iterates on.
struct RightPreconditioned<'a> {
    z: &'a FastZOperator,
    m: &'a BlockDiagPrecond,
}

impl LinearOperator<Complex> for RightPreconditioned<'_> {
    fn dim(&self) -> usize {
        self.z.dim()
    }
    fn apply(&self, x: &[Complex], y: &mut [Complex]) {
        let mut t = vec![Complex::ZERO; x.len()];
        self.m.solve_into(x, &mut t);
        self.z.apply(&t, y);
    }
}

/// Krylov tolerances used by the iterative impedance path: tight enough
/// that backend disagreement stays below 1e-9 relative.
pub fn impedance_gmres_options() -> GmresOptions {
    GmresOptions {
        restart: 100,
        max_iterations: 2000,
        rel_tol: 1e-12,
        abs_tol: 0.0,
    }
}

/// Conductor-level admittance `Y = A·Z⁻¹·Aᵀ` via one preconditioned GMRES
/// solve per conductor (`A` is the filament-ownership incidence matrix):
/// column `j` of `Z⁻¹·Aᵀ` is the filament current vector under a unit
/// voltage on conductor `j`, and summing it per conductor gives `Y`'s
/// column `j`.
///
/// # Errors
///
/// [`PeecError::Numeric`] with
/// [`rlcx_numeric::NumericError::DidNotConverge`] if any solve exhausts
/// its iteration budget.
pub fn conductor_admittance(
    op: &FastZOperator,
    pre: &BlockDiagPrecond,
    owner: &[usize],
    n_cond: usize,
) -> Result<CMatrix> {
    let n = op.dim();
    debug_assert_eq!(owner.len(), n);
    debug_assert_eq!(pre.n, n);
    let sys = RightPreconditioned { z: op, m: pre };
    let opts = impedance_gmres_options();
    let mut y = CMatrix::zeros(n_cond, n_cond);
    for cj in 0..n_cond {
        let rhs: Vec<Complex> = owner
            .iter()
            .map(|&ci| {
                if ci == cj {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        let sol = gmres(&sys, &rhs, None, &opts)
            .map_err(PeecError::from)?
            .into_converged()
            .map_err(PeecError::from)?;
        // Un-precondition: the iterate solves Z·M⁻¹·u = b, so x = M⁻¹·u.
        let mut x = vec![Complex::ZERO; n];
        pre.solve_into(&sol.x, &mut x);
        for (i, xi) in x.iter().enumerate() {
            y[(owner[i], cj)] += *xi;
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;
    use rlcx_geom::{Axis, Point3};

    /// A grid of well-separated filament clusters for ACA behaviour tests:
    /// two 6×6 filament bundles `sep` µm apart.
    fn two_bundles(sep: f64) -> (Vec<Bar>, Vec<f64>) {
        let mut fils = Vec::new();
        for base in [0.0, sep] {
            for i in 0..6 {
                for j in 0..6 {
                    let b = Bar::new(
                        Point3::new(0.0, base + i as f64 * 1.0, 10.0 + j as f64 * 1.0),
                        Axis::X,
                        1000.0,
                        0.9,
                        0.9,
                    )
                    .unwrap();
                    fils.push(b);
                }
            }
        }
        let rhos = vec![RHO_COPPER; fils.len()];
        (fils, rhos)
    }

    #[test]
    fn kernel_cache_collapses_uniform_mesh_pairs() {
        let (fils, _) = two_bundles(100.0);
        let mut kernel = KernelCache::new(1000.0);
        for i in 0..fils.len() {
            for j in 0..fils.len() {
                kernel.entry(&fils, i, j);
            }
        }
        let (hits, misses) = kernel.stats();
        // 72 filaments → 5184 lookups but only O(#offsets) distinct
        // geometries: a 6×6 bundle pair has far fewer distinct offsets
        // than pairs.
        assert_eq!(hits + misses, 72 * 72);
        assert!(
            kernel.distinct() < 600,
            "expected heavy memoization, got {} distinct",
            kernel.distinct()
        );
        assert!(hits > 9 * misses, "hit rate too low: {hits} vs {misses}");
    }

    #[test]
    fn kernel_cache_matches_direct_evaluation() {
        let (fils, _) = two_bundles(40.0);
        let mut kernel = KernelCache::new(1000.0);
        for (i, a) in fils.iter().enumerate().step_by(7) {
            for (j, b) in fils.iter().enumerate().step_by(5) {
                if i == j {
                    continue;
                }
                let cached = kernel.mutual_l(a, b);
                let direct = crate::partial::mutual_partial(a, b);
                let rel = (cached - direct).abs() / direct.abs();
                assert!(rel < 1e-11, "({i},{j}): {cached} vs {direct}");
            }
        }
    }

    #[test]
    fn aca_rank_stays_small_for_well_separated_clusters() {
        // Satellite: rank growth sanity. Two 36-filament bundles at
        // increasing separation — the interaction becomes smoother, so the
        // ACA rank must stay far below min(nr, nc) = 36 and shrink (weakly)
        // with distance.
        let opts = FastOpOptions::default();
        let mut last_rank = usize::MAX - 2;
        for sep in [40.0, 160.0, 640.0] {
            let (fils, _) = two_bundles(sep);
            let pts: Vec<(f64, f64)> = fils
                .iter()
                .map(|f| {
                    let (t0, t1) = f.transverse_span();
                    let (z0, z1) = f.vertical_span();
                    (0.5 * (t0 + t1), 0.5 * (z0 + z1))
                })
                .collect();
            let a = Cluster::build((0..36).collect(), &pts, 64);
            let b = Cluster::build((36..72).collect(), &pts, 64);
            assert!(a.gap_to(&b) >= a.diameter().max(b.diameter()));
            let mut kernel = KernelCache::new(1000.0);
            let fb = aca_block(&a, &b, &fils, &mut kernel, &opts).expect("ACA must converge");
            assert!(fb.rank <= 18, "sep {sep}: rank {} too large", fb.rank);
            assert!(
                fb.rank <= last_rank + 2,
                "rank should not grow with separation"
            );
            last_rank = fb.rank;

            // And the factorization reproduces the block to tolerance.
            let mut worst = 0.0f64;
            let mut scale = 0.0f64;
            for (ri, &i) in fb.rows.iter().enumerate() {
                for (cj, &j) in fb.cols.iter().enumerate() {
                    let exact = kernel.entry(&fils, i, j);
                    let mut approx = 0.0;
                    for k in 0..fb.rank {
                        approx += fb.u[k * 36 + ri] * fb.v[k * 36 + cj];
                    }
                    worst = worst.max((exact - approx).abs());
                    scale = scale.max(exact.abs());
                }
            }
            assert!(
                worst <= 1e-6 * scale,
                "sep {sep}: ACA error {worst:.3e} vs scale {scale:.3e}"
            );
        }
    }

    #[test]
    fn fast_operator_matches_dense_apply() {
        let (fils, rhos) = two_bundles(30.0);
        let omega = 2.0 * std::f64::consts::PI * 3.2e9;
        let mut kernel = KernelCache::new(1000.0);
        let op = FastZOperator::new(&fils, &rhos, omega, &mut kernel, &FastOpOptions::default());
        let n = fils.len();
        // Dense reference.
        let mut z = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                z[(i, j)] = if i == j {
                    Complex::new(
                        dc_resistance(&fils[i], rhos[i]),
                        omega * self_partial(&fils[i]),
                    )
                } else {
                    Complex::from_imag(omega * crate::partial::mutual_partial(&fils[i], &fils[j]))
                };
            }
        }
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
            .collect();
        let mut y_fast = vec![Complex::ZERO; n];
        let mut y_dense = vec![Complex::ZERO; n];
        op.apply(&x, &mut y_fast);
        z.apply(&x, &mut y_dense);
        let scale = y_dense.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (f, d) in y_fast.iter().zip(&y_dense) {
            assert!((*f - *d).abs() <= 1e-9 * scale, "{f} vs {d}");
        }
    }

    #[test]
    fn backend_cutover_policy() {
        assert!(!SolverBackend::Dense.is_iterative(100_000));
        assert!(SolverBackend::Iterative.is_iterative(4));
        assert!(!SolverBackend::Auto.is_iterative(ITERATIVE_CUTOVER - 1));
        assert!(SolverBackend::Auto.is_iterative(ITERATIVE_CUTOVER));
        assert_eq!(SolverBackend::Auto.name(), "auto");
    }
}
