//! H² nested-basis far-field compression for the fast PEEC operator.
//!
//! The flat H-matrix path in [`crate::fastop`] stores every admissible
//! cluster pair as its own ACA `U·Vᵀ` factor — `O(n log n)` far-field
//! memory, because a filament near the middle of the mesh appears in
//! `O(log n)` far blocks and each block carries its own row basis. The H²
//! representation removes that redundancy with *nested total cluster
//! bases*:
//!
//! * every cluster `c` that takes part in (or inherits) an admissible
//!   interaction gets one basis `U_c` that covers its **entire** far field
//!   `F(c) = partners(c) ∪ F(parent)`,
//! * leaf bases are stored explicitly; an interior cluster's basis is
//!   expressed through its children's bases via small **transfer matrices**
//!   `E₁`, `E₂` (the translation operators), so tall bases are never
//!   materialized,
//! * an admissible pair `(a, b)` stores only the tiny **coupling matrix**
//!   `S_ab` between the two bases instead of an `|a| + |b|`-sized factor.
//!
//! The bases are built algebraically by a *skeleton* (interpolative)
//! decomposition: pivoted modified Gram–Schmidt on the sampled far-field
//! interaction rows selects real filament rows `J_c` (the skeleton) and an
//! interpolation `T_c` with `K(c, F) ≈ T_c·K(J_c, F)`, `T_c[J_c,:] = I`.
//! Nesting is then free — an interior cluster interpolates from the union
//! of its children's skeletons — and the coupling matrix is just the kernel
//! evaluated between skeletons: `S_ab = K(J_a, J_b)`.
//!
//! Admissibility here is stricter than the flat path's: a pair must also
//! satisfy `gap > 4·max(s_a, s_b)` (the per-cluster maximum cross-section
//! dimension), which guarantees **every** filament pair in the block takes
//! the far GMD branch of [`crate::gmd::cross_section_is_far`]. The kernel
//! over such a block is exactly the aligned-filament formula at the center
//! distance — a smooth, quadrature-free function the sampling can evaluate
//! millions of times for the price of a few near-field table entries.
//! Admissible pairs that fail the all-far test stay on the flat ACA path.
//!
//! Observability: every accepted basis pushes its rank to the `h2.rank`
//! series channel (step = cluster level) and the `h2.basis.rank` histogram
//! (its p99 is gated in CI via `report_diff`).

use crate::fastop::ClusterTree;
use crate::partial::mutual_filaments_aligned_m;
use rlcx_geom::units::um_to_m;
use rlcx_numeric::{obs, par_map, Complex};

/// Tuning knobs of the H² build, derived from
/// [`crate::fastop::FastOpOptions`].
pub(crate) struct H2Params {
    /// Skeleton truncation tolerance, relative to the first pivot norm.
    pub tol: f64,
    /// Rank cap per cluster basis.
    pub max_rank: usize,
    /// Far-field sample budget per cluster (columns of the ID matrix).
    pub sample_cap: usize,
}

/// One cluster basis: the skeleton filament ids plus either an explicit
/// leaf interpolation or the pair of child transfer matrices.
struct Basis {
    rank: usize,
    /// Global filament indices of the skeleton rows.
    skel: Vec<usize>,
    kind: BasisKind,
}

enum BasisKind {
    /// `u` is `|c| × rank` row-major: cluster-local row → basis column.
    Leaf { u: Vec<f64> },
    /// Transfer matrices, `rank(child) × rank` row-major each.
    Interior { e1: Vec<f64>, e2: Vec<f64> },
}

/// Coupling matrix of one admissible pair: `s` is `rank_a × rank_b`
/// row-major, `s[i][j] = K(skel_a[i], skel_b[j])`. Applied together with
/// its transpose (pairs are generated in one orientation only).
struct Coupling {
    a: usize,
    b: usize,
    s: Vec<f64>,
}

/// The assembled H² far field: per-node bases plus coupling matrices.
pub(crate) struct H2Field {
    bases: Vec<Option<Basis>>,
    couplings: Vec<Coupling>,
    /// Basis-bearing node ids grouped by tree depth (`levels[l]` holds the
    /// level-`l` nodes in ascending id order). The upward/downward passes
    /// run one level at a time: within a level no node depends on another,
    /// so each level is a deterministic parallel map.
    levels: Vec<Vec<usize>>,
    /// Per-node incident couplings `(index, transposed)`, in global
    /// coupling order. `transposed` means the node is the `b` side and
    /// receives `Sᵀ` contributions.
    incident: Vec<Vec<(usize, bool)>>,
    /// Largest basis rank over all clusters.
    pub(crate) max_rank: usize,
    /// Total `f64`s stored (bases + transfers + couplings).
    pub(crate) mem_f64: usize,
}

impl H2Field {
    /// Number of admissible pairs stored as couplings.
    pub(crate) fn coupling_count(&self) -> usize {
        self.couplings.len()
    }

    /// `w += Lp_far·x` for the H²-compressed part of the far field:
    /// upward pass (restrict through the nested bases), coupling multiply
    /// (both orientations), downward pass (prolongate back to filaments).
    ///
    /// All three passes are parallel yet bit-identical for every thread
    /// count: the up/down sweeps shard by node within a tree level (a node
    /// only reads one level away), and the coupling multiply is gathered
    /// per receiving node over its fixed-order incident list, so every
    /// coefficient sees the same additions in the same order as a serial
    /// sweep over the couplings.
    pub(crate) fn apply(&self, tree: &ClusterTree, x: &[Complex], w: &mut [Complex]) {
        let n_nodes = self.bases.len();
        // Upward: children before parents — deepest level first. A level's
        // nodes read only their children's coefficients (one level deeper,
        // already final), so the level is an independent parallel map with
        // a serial scatter.
        let mut up: Vec<Vec<Complex>> = vec![Vec::new(); n_nodes];
        for nodes in self.levels.iter().rev() {
            let computed: Vec<Vec<Complex>> = par_map(nodes.len(), |ni| {
                let c = nodes[ni];
                let basis = self.bases[c].as_ref().expect("level node basis");
                let rank = basis.rank;
                let mut xh = vec![Complex::ZERO; rank];
                match &basis.kind {
                    BasisKind::Leaf { u } => {
                        for (r, &i) in tree.indices(c).iter().enumerate() {
                            let xi = x[i];
                            for (k, xk) in xh.iter_mut().enumerate() {
                                *xk += xi * u[r * rank + k];
                            }
                        }
                    }
                    BasisKind::Interior { e1, e2 } => {
                        let (c1, c2) = tree.children(c).expect("interior basis on leaf");
                        for (child, e) in [(c1, e1), (c2, e2)] {
                            for (r, &xr) in up[child].iter().enumerate() {
                                for (k, xk) in xh.iter_mut().enumerate() {
                                    *xk += xr * e[r * rank + k];
                                }
                            }
                        }
                    }
                }
                xh
            });
            for (&c, xh) in nodes.iter().zip(computed) {
                up[c] = xh;
            }
        }
        // Couplings: yh_a += S·xh_b and yh_b += Sᵀ·xh_a, gathered on the
        // receiving side — each node folds its incident list into its own
        // coefficient vector, so concurrent tasks never share an output.
        let all: Vec<usize> = self.levels.iter().flatten().copied().collect();
        let mut down: Vec<Vec<Complex>> = vec![Vec::new(); n_nodes];
        let gathered: Vec<Vec<Complex>> = par_map(all.len(), |ni| {
            let c = all[ni];
            let rank = self.bases[c].as_ref().expect("gather node basis").rank;
            let mut yh = vec![Complex::ZERO; rank];
            for &(idx, transposed) in &self.incident[c] {
                let cp = &self.couplings[idx];
                if !transposed {
                    let rb = self.bases[cp.b].as_ref().expect("coupling basis b").rank;
                    for (i, yi) in yh.iter_mut().enumerate() {
                        let mut acc = Complex::ZERO;
                        for (&ub, &sij) in up[cp.b].iter().zip(&cp.s[i * rb..(i + 1) * rb]) {
                            acc += ub * sij;
                        }
                        *yi += acc;
                    }
                } else {
                    for (i, &xa) in up[cp.a].iter().enumerate() {
                        for (j, yj) in yh.iter_mut().enumerate() {
                            *yj += xa * cp.s[i * rank + j];
                        }
                    }
                }
            }
            yh
        });
        for (&c, yh) in all.iter().zip(gathered) {
            down[c] = yh;
        }
        // Downward: parents before children — top level first. Each node
        // prolongates its (now final) coefficients into per-child deltas or
        // leaf contributions; the serial scatter applies them in node order.
        enum Prolonged {
            Leaf(Vec<Complex>),
            Interior(usize, usize, Vec<Complex>, Vec<Complex>),
        }
        for nodes in &self.levels {
            let parts: Vec<Prolonged> = par_map(nodes.len(), |ni| {
                let c = nodes[ni];
                let basis = self.bases[c].as_ref().expect("level node basis");
                let rank = basis.rank;
                let yh = &down[c];
                match &basis.kind {
                    BasisKind::Leaf { u } => {
                        let rows = tree.indices(c).len();
                        let mut ws = Vec::with_capacity(rows);
                        for r in 0..rows {
                            let mut acc = Complex::ZERO;
                            for (k, &yk) in yh.iter().enumerate() {
                                acc += yk * u[r * rank + k];
                            }
                            ws.push(acc);
                        }
                        Prolonged::Leaf(ws)
                    }
                    BasisKind::Interior { e1, e2 } => {
                        let (c1, c2) = tree.children(c).expect("interior basis on leaf");
                        let prolong = |e: &[f64], child: usize| -> Vec<Complex> {
                            let rc = self.bases[child].as_ref().expect("child basis").rank;
                            (0..rc)
                                .map(|r| {
                                    let mut acc = Complex::ZERO;
                                    for (k, &yk) in yh.iter().enumerate() {
                                        acc += yk * e[r * rank + k];
                                    }
                                    acc
                                })
                                .collect()
                        };
                        Prolonged::Interior(c1, c2, prolong(e1, c1), prolong(e2, c2))
                    }
                }
            });
            for (&c, part) in nodes.iter().zip(parts) {
                match part {
                    Prolonged::Leaf(ws) => {
                        for (r, &i) in tree.indices(c).iter().enumerate() {
                            w[i] += ws[r];
                        }
                    }
                    Prolonged::Interior(c1, c2, d1, d2) => {
                        for (r, v) in d1.into_iter().enumerate() {
                            down[c1][r] += v;
                        }
                        for (r, v) in d2.into_iter().enumerate() {
                            down[c2][r] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Builds the H² far field for the admissible `pairs` of `tree`.
///
/// `centers` are the cross-section centers `(t, z)` of every filament and
/// `length_um` the shared axial span; the far-branch kernel is the
/// aligned-filament mutual at the center distance, which the H²
/// admissibility rule guarantees is the *exact* kernel over every stored
/// pair.
pub(crate) fn build(
    tree: &ClusterTree,
    pairs: &[(usize, usize)],
    centers: &[(f64, f64)],
    length_um: f64,
    params: &H2Params,
) -> H2Field {
    let l_m = um_to_m(length_um);
    let g = |i: usize, j: usize| {
        let (ti, zi) = centers[i];
        let (tj, zj) = centers[j];
        mutual_filaments_aligned_m(l_m, um_to_m((ti - tj).hypot(zi - zj)))
    };
    let n_nodes = tree.node_count();

    // Partner lists (both orientations) and parent links.
    let mut partners: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for &(a, b) in pairs {
        partners[a].push(b);
        partners[b].push(a);
    }
    let mut parent = vec![usize::MAX; n_nodes];
    for c in 0..n_nodes {
        if let Some((l, r)) = tree.children(c) {
            parent[l] = c;
            parent[r] = c;
        }
    }

    // Total far-field sample sets, top-down: own partners plus everything
    // the ancestors interact with, deterministically subsampled to the
    // column budget. A non-empty set marks the cluster as basis-bearing.
    let mut farfield: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for c in 0..n_nodes {
        let mut f: Vec<usize> = Vec::new();
        for &p in &partners[c] {
            extend_subsampled(&mut f, tree.indices(p), 64);
        }
        if parent[c] != usize::MAX && !farfield[parent[c]].is_empty() {
            let inherited = farfield[parent[c]].clone();
            f.extend_from_slice(&inherited);
        }
        subsample_in_place(&mut f, params.sample_cap);
        farfield[c] = f;
    }

    // Basis-bearing nodes grouped by tree depth. A cluster's basis depends
    // only on its children's skeletons (one level deeper), so the bases of
    // one level are mutually independent: each level builds as a parallel
    // map with a serial scatter, deepest level first. Every node's basis is
    // a pure function of its inputs, which keeps the build bit-identical
    // for every thread count.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for (c, far) in farfield.iter().enumerate() {
        if far.is_empty() {
            continue;
        }
        let l = tree.level(c);
        if levels.len() <= l {
            levels.resize(l + 1, Vec::new());
        }
        levels[l].push(c);
    }
    let mut bases: Vec<Option<Basis>> = (0..n_nodes).map(|_| None).collect();
    for nodes in levels.iter().rev() {
        let built: Vec<Basis> = par_map(nodes.len(), |ni| {
            let c = nodes[ni];
            let (cand, child_ranks): (Vec<usize>, Option<(usize, usize)>) = match tree.children(c) {
                None => (tree.indices(c).to_vec(), None),
                Some((c1, c2)) => {
                    let b1 = bases[c1].as_ref().expect("child basis (F(c1) ⊇ F(c))");
                    let b2 = bases[c2].as_ref().expect("child basis (F(c2) ⊇ F(c))");
                    let mut cand = b1.skel.clone();
                    cand.extend_from_slice(&b2.skel);
                    (cand, Some((b1.rank, b2.rank)))
                }
            };
            let m = cand.len();
            let s = farfield[c].len();
            let mut a = vec![0.0f64; m * s];
            for (r, &i) in cand.iter().enumerate() {
                for (q, &j) in farfield[c].iter().enumerate() {
                    a[r * s + q] = g(i, j);
                }
            }
            let (piv, interp) = row_id(&a, m, s, params.tol, params.max_rank);
            let rank = piv.len();
            debug_assert!(rank > 0, "positive kernel must yield a nonzero basis");
            let skel: Vec<usize> = piv.iter().map(|&r| cand[r]).collect();
            let kind = match child_ranks {
                None => BasisKind::Leaf { u: interp },
                Some((r1, _)) => {
                    let e1 = interp[..r1 * rank].to_vec();
                    let e2 = interp[r1 * rank..].to_vec();
                    BasisKind::Interior { e1, e2 }
                }
            };
            Basis { rank, skel, kind }
        });
        for (&c, b) in nodes.iter().zip(built) {
            bases[c] = Some(b);
        }
    }
    // Rank observability and memory accounting, in the order the serial
    // builder used (descending node id: children before parents) so the
    // series channel and histograms match it push for push.
    let mut max_rank = 0usize;
    let mut mem_f64 = 0usize;
    for c in (0..n_nodes).rev() {
        let Some(b) = &bases[c] else {
            continue;
        };
        obs::observe("h2.basis.rank", b.rank as f64);
        obs::series_push("h2.rank", tree.level(c) as f64, b.rank as f64);
        max_rank = max_rank.max(b.rank);
        mem_f64 += match &b.kind {
            BasisKind::Leaf { u } => u.len(),
            BasisKind::Interior { e1, e2 } => e1.len() + e2.len(),
        };
    }

    // Couplings: the kernel between skeletons, one independent pair each.
    let couplings: Vec<Coupling> = par_map(pairs.len(), |pi| {
        let (ca, cb) = pairs[pi];
        let sa = &bases[ca].as_ref().expect("basis a").skel;
        let sb = &bases[cb].as_ref().expect("basis b").skel;
        let mut s = vec![0.0f64; sa.len() * sb.len()];
        for (i, &fi) in sa.iter().enumerate() {
            for (j, &fj) in sb.iter().enumerate() {
                s[i * sb.len() + j] = g(fi, fj);
            }
        }
        Coupling { a: ca, b: cb, s }
    });
    let mut incident: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n_nodes];
    for (idx, cp) in couplings.iter().enumerate() {
        mem_f64 += cp.s.len();
        incident[cp.a].push((idx, false));
        incident[cp.b].push((idx, true));
    }

    H2Field {
        bases,
        couplings,
        levels,
        incident,
        max_rank,
        mem_f64,
    }
}

/// Row interpolative decomposition by pivoted modified Gram–Schmidt on the
/// `m × s` row-major matrix `a`: returns the selected skeleton row indices
/// `J` (in pivot order) and the interpolation matrix `T` (`m × rank`,
/// row-major) with `A ≈ T·A[J,:]` and `T[J,:] = I` exactly. Stops when the
/// next pivot's residual norm falls below `tol ×` the first pivot norm, or
/// at `max_rank`.
fn row_id(a: &[f64], m: usize, s: usize, tol: f64, max_rank: usize) -> (Vec<usize>, Vec<f64>) {
    let mut resid = a.to_vec();
    let mut used = vec![false; m];
    let mut piv: Vec<usize> = Vec::new();
    // coeff[r][k] = component of row r along orthonormal direction q_k.
    let mut coeff: Vec<Vec<f64>> = vec![Vec::new(); m];
    let mut scale0 = 0.0f64;
    let cap = max_rank.min(m).max(1);
    while piv.len() < cap {
        let mut r_star = usize::MAX;
        let mut best = -1.0f64;
        for r in 0..m {
            if used[r] {
                continue;
            }
            let nrm2: f64 = resid[r * s..(r + 1) * s].iter().map(|v| v * v).sum();
            if nrm2 > best {
                best = nrm2;
                r_star = r;
            }
        }
        if r_star == usize::MAX {
            break;
        }
        let nrm = best.max(0.0).sqrt();
        if piv.is_empty() {
            if nrm == 0.0 {
                break;
            }
            scale0 = nrm;
        } else if nrm <= tol * scale0 {
            break;
        }
        let q: Vec<f64> = resid[r_star * s..(r_star + 1) * s]
            .iter()
            .map(|v| v / nrm)
            .collect();
        for r in 0..m {
            let row = &mut resid[r * s..(r + 1) * s];
            let c: f64 = row.iter().zip(&q).map(|(x, y)| x * y).sum();
            for (x, y) in row.iter_mut().zip(&q) {
                *x -= c * y;
            }
            coeff[r].push(c);
        }
        used[r_star] = true;
        piv.push(r_star);
    }
    let rank = piv.len();
    // Solve T·C_J = C by back substitution: C_J is lower triangular in
    // pivot order (a pivot row's residual is zero from its step onward),
    // with the pivot norms on the diagonal.
    let mut t = vec![0.0f64; m * rank];
    for r in 0..m {
        let c = &coeff[r];
        for a_idx in (0..rank).rev() {
            let mut v = c[a_idx];
            for b_idx in (a_idx + 1)..rank {
                v -= coeff[piv[b_idx]][a_idx] * t[r * rank + b_idx];
            }
            t[r * rank + a_idx] = v / coeff[piv[a_idx]][a_idx];
        }
    }
    (piv, t)
}

/// Appends a deterministic stride subsample of `src` (at most `cap`
/// elements) to `dst`.
fn extend_subsampled(dst: &mut Vec<usize>, src: &[usize], cap: usize) {
    if src.len() <= cap {
        dst.extend_from_slice(src);
    } else {
        dst.extend((0..cap).map(|k| src[k * src.len() / cap]));
    }
}

/// Caps `v` to `cap` elements by deterministic stride subsampling.
fn subsample_in_place(v: &mut Vec<usize>, cap: usize) {
    if v.len() > cap {
        let n = v.len();
        *v = (0..cap).map(|k| v[k * n / cap]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_reconstructs_low_rank_matrix() {
        // A rank-2 matrix: rows are combinations of two generators.
        let (m, s) = (6, 5);
        let g1: Vec<f64> = (0..s).map(|j| (j as f64 * 0.7).sin()).collect();
        let g2: Vec<f64> = (0..s).map(|j| (j as f64 * 0.3).cos()).collect();
        let mut a = vec![0.0; m * s];
        for r in 0..m {
            let (c1, c2) = (1.0 + r as f64, (r as f64 * 0.5) - 1.0);
            for j in 0..s {
                a[r * s + j] = c1 * g1[j] + c2 * g2[j];
            }
        }
        let (piv, t) = row_id(&a, m, s, 1e-12, 10);
        assert_eq!(piv.len(), 2, "rank-2 input must give a rank-2 skeleton");
        // A ≈ T·A[J,:] entrywise.
        for r in 0..m {
            for j in 0..s {
                let mut approx = 0.0;
                for (k, &p) in piv.iter().enumerate() {
                    approx += t[r * 2 + k] * a[p * s + j];
                }
                assert!(
                    (approx - a[r * s + j]).abs() < 1e-10,
                    "({r},{j}): {approx} vs {}",
                    a[r * s + j]
                );
            }
        }
        // T restricted to the skeleton rows is the identity, exactly.
        for (k, &p) in piv.iter().enumerate() {
            for k2 in 0..piv.len() {
                let expect: f64 = if k == k2 { 1.0 } else { 0.0 };
                assert_eq!(t[p * 2 + k2].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn row_id_truncates_at_tolerance() {
        // Rows with geometrically decaying magnitude: tolerance cuts the
        // tail without touching the dominant directions.
        let (m, s) = (8, 8);
        let mut a = vec![0.0; m * s];
        for r in 0..m {
            a[r * s + r] = 10.0f64.powi(-(r as i32));
        }
        let (piv, _) = row_id(&a, m, s, 1e-4, 100);
        assert!(piv.len() >= 4 && piv.len() <= 6, "rank {}", piv.len());
    }

    #[test]
    fn subsample_is_deterministic_and_capped() {
        let src: Vec<usize> = (0..100).collect();
        let mut dst = Vec::new();
        extend_subsampled(&mut dst, &src, 10);
        assert_eq!(dst.len(), 10);
        assert_eq!(dst[0], 0);
        assert!(dst.windows(2).all(|w| w[0] < w[1]));
        let mut v: Vec<usize> = (0..7).collect();
        subsample_in_place(&mut v, 16);
        assert_eq!(v.len(), 7, "under-cap vectors stay untouched");
    }
}
