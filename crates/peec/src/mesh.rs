//! Volume-filament decomposition of conductors.
//!
//! At the significant frequency the current crowds toward the conductor
//! surface (skin effect) and toward neighboring return paths (proximity
//! effect). PEEC captures both by splitting each conductor cross-section
//! into filaments, each carrying uniform current, and solving the coupled
//! impedance system — exactly FastHenry's discretization, minus the
//! multipole acceleration (unnecessary at clocktree block sizes).

use rlcx_geom::units::{skin_depth, um_to_m};
use rlcx_geom::Bar;

/// Filament mesh density for one conductor: `nw` divisions across the width,
/// `nt` across the thickness.
///
/// # Example
///
/// ```
/// use rlcx_peec::MeshSpec;
///
/// let spec = MeshSpec::new(3, 2);
/// assert_eq!(spec.filament_count(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshSpec {
    nw: usize,
    nt: usize,
}

impl MeshSpec {
    /// A mesh with the given divisions (clamped to at least 1 each).
    pub fn new(nw: usize, nt: usize) -> Self {
        MeshSpec {
            nw: nw.max(1),
            nt: nt.max(1),
        }
    }

    /// The trivial 1×1 mesh: uniform current, DC-accurate.
    pub fn single() -> Self {
        MeshSpec { nw: 1, nt: 1 }
    }

    /// Chooses divisions so each filament is no larger than the skin depth
    /// of a conductor with resistivity `rho` (Ω·m) at frequency `f` (Hz),
    /// capped at `max_per_side` to bound solve cost.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `rho` is not positive (propagated from
    /// [`skin_depth`]).
    pub fn for_skin_depth(bar: &Bar, rho: f64, f: f64, max_per_side: usize) -> Self {
        let delta_um = skin_depth(rho, f) / um_to_m(1.0);
        let cap = max_per_side.max(1);
        let nw = ((bar.width() / delta_um).ceil() as usize).clamp(1, cap);
        let nt = ((bar.thickness() / delta_um).ceil() as usize).clamp(1, cap);
        MeshSpec { nw, nt }
    }

    /// Divisions across the width.
    pub fn nw(&self) -> usize {
        self.nw
    }

    /// Divisions across the thickness.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Total filaments per conductor.
    pub fn filament_count(&self) -> usize {
        self.nw * self.nt
    }

    /// Splits `bar` into `nw × nt` equal filaments (full length each).
    ///
    /// The filaments tile the cross-section exactly; summed areas equal the
    /// bar's cross-section area.
    pub fn filaments(&self, bar: &Bar) -> Vec<Bar> {
        let fw = bar.width() / self.nw as f64;
        let ft = bar.thickness() / self.nt as f64;
        let origin = bar.origin();
        let mut out = Vec::with_capacity(self.filament_count());
        for iw in 0..self.nw {
            for it in 0..self.nt {
                let dt = iw as f64 * fw;
                let dz = it as f64 * ft;
                let fil_origin = match bar.axis() {
                    rlcx_geom::Axis::X => {
                        rlcx_geom::Point3::new(origin.x, origin.y + dt, origin.z + dz)
                    }
                    rlcx_geom::Axis::Y => {
                        rlcx_geom::Point3::new(origin.x + dt, origin.y, origin.z + dz)
                    }
                };
                out.push(
                    Bar::new(fil_origin, bar.axis(), bar.length(), fw, ft)
                        .expect("filament dimensions positive by construction"),
                );
            }
        }
        out
    }
}

impl Default for MeshSpec {
    /// A 3×2 mesh: good skin-effect accuracy for 1990s-era 2 µm-thick clock
    /// metal in the low-GHz range at modest cost.
    fn default() -> Self {
        MeshSpec { nw: 3, nt: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcx_geom::units::RHO_COPPER;
    use rlcx_geom::{Axis, Point3};

    fn bar() -> Bar {
        Bar::new(Point3::new(0.0, 0.0, 10.0), Axis::X, 1000.0, 6.0, 2.0).unwrap()
    }

    #[test]
    fn filaments_tile_cross_section() {
        let spec = MeshSpec::new(3, 2);
        let fils = spec.filaments(&bar());
        assert_eq!(fils.len(), 6);
        let total_area: f64 = fils.iter().map(Bar::cross_section_area).sum();
        assert!((total_area - bar().cross_section_area()).abs() < 1e-9);
        // Filaments span the full width/thickness.
        let min_t = fils
            .iter()
            .map(|f| f.transverse_span().0)
            .fold(f64::INFINITY, f64::min);
        let max_t = fils
            .iter()
            .map(|f| f.transverse_span().1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!((min_t, max_t), bar().transverse_span());
    }

    #[test]
    fn filaments_do_not_intersect() {
        let fils = MeshSpec::new(4, 3).filaments(&bar());
        for i in 0..fils.len() {
            for j in (i + 1)..fils.len() {
                assert!(
                    !fils[i].intersects(&fils[j]),
                    "filaments {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn filaments_preserve_length_and_axis() {
        for f in MeshSpec::new(2, 2).filaments(&bar()) {
            assert_eq!(f.length(), 1000.0);
            assert_eq!(f.axis(), Axis::X);
        }
    }

    #[test]
    fn y_axis_bars_mesh_across_x() {
        let b = Bar::new(Point3::new(5.0, 0.0, 10.0), Axis::Y, 500.0, 4.0, 2.0).unwrap();
        let fils = MeshSpec::new(2, 1).filaments(&b);
        assert_eq!(fils.len(), 2);
        assert_eq!(fils[0].transverse_span(), (5.0, 7.0));
        assert_eq!(fils[1].transverse_span(), (7.0, 9.0));
    }

    #[test]
    fn skin_depth_mesh_scales_with_frequency() {
        let low = MeshSpec::for_skin_depth(&bar(), RHO_COPPER, 1e8, 8);
        let high = MeshSpec::for_skin_depth(&bar(), RHO_COPPER, 1e10, 8);
        assert!(high.filament_count() >= low.filament_count());
        // At 10 GHz the skin depth (~0.66 µm) forces multiple divisions.
        assert!(high.nw() >= 4 && high.nt() >= 2);
    }

    #[test]
    fn skin_depth_mesh_respects_cap() {
        let spec = MeshSpec::for_skin_depth(&bar(), RHO_COPPER, 1e12, 5);
        assert!(spec.nw() <= 5 && spec.nt() <= 5);
    }

    #[test]
    fn new_clamps_zero_to_one() {
        let spec = MeshSpec::new(0, 0);
        assert_eq!(spec.filament_count(), 1);
        assert_eq!(MeshSpec::single().filament_count(), 1);
    }
}
