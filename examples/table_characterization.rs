//! Inspect a full table characterization: grids, values and interpolation
//! quality.
//!
//! ```text
//! cargo run --release --example table_characterization
//! ```
//!
//! Builds the paper-style tables for two shield configurations, dumps the
//! loop-L grid, and cross-checks the spline interpolation against direct
//! field solves at off-grid points.

use rlcx::core::TableBuilder;
use rlcx::geom::{Block, ShieldConfig, Stackup};
use rlcx::peec::{BlockExtractor, MeshSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stackup = Stackup::hp_six_metal_copper();
    let widths = vec![1.0, 2.0, 5.0, 10.0];
    let lengths = vec![250.0, 500.0, 1000.0, 2000.0, 4000.0];
    println!(
        "characterizing layer M6: {} widths x {} lengths, coplanar + microstrip ...",
        widths.len(),
        lengths.len()
    );
    let tables = TableBuilder::new(stackup.clone(), 5)?
        .widths(widths.clone())
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(lengths.clone())
        .shields(vec![ShieldConfig::Coplanar, ShieldConfig::PlaneBelow])
        .build()?;

    for shield in [ShieldConfig::Coplanar, ShieldConfig::PlaneBelow] {
        let table = tables.loop_table(shield)?;
        println!("\nloop-L grid (nH), {shield:?}:");
        print!("{:>8}", "w\\len");
        for len in &lengths {
            print!("{len:>9.0}");
        }
        println!();
        for &w in &widths {
            print!("{w:>8.1}");
            for &len in &lengths {
                print!("{:>9.4}", table.lookup_l(w, len) * 1e9);
            }
            println!();
        }
    }

    // Interpolation spot checks against fresh extractions.
    println!("\ninterpolation spot checks (coplanar loop table):");
    let table = tables.loop_table(ShieldConfig::Coplanar)?;
    let extractor = BlockExtractor::new(stackup, 5)?
        .frequency(3.2e9)
        .mesh(MeshSpec::default());
    for (w, len) in [(3.0, 750.0), (7.5, 1500.0), (4.0, 3000.0)] {
        let interpolated = table.lookup_l(w, len);
        let block = Block::coplanar_waveguide(len, w, w, 1.0)?;
        let direct = extractor.extract(&block)?.loop_l[(0, 0)];
        println!(
            "  w = {w:>4.1} um, len = {len:>6.0} um: table {:.4} nH vs solver {:.4} nH ({:+.2} %)",
            interpolated * 1e9,
            direct * 1e9,
            (interpolated - direct) / direct * 100.0
        );
    }
    println!(
        "\ninterpolation errors stay well under the process-variation noise floor — \
         the paper's justification for replacing field solves with table lookups."
    );
    Ok(())
}
