//! Buffered H-tree skew analysis under process variation.
//!
//! ```text
//! cargo run --release --example htree_skew
//! ```
//!
//! Builds a 2-level H-tree over a 1.28 cm die, extracts each buffer stage
//! with the table method, and reports nominal insertion delay (RC vs RLC)
//! plus Monte-Carlo skew using the paper's nominal-L + statistical-RC
//! recipe.

use rlcx::cap::VariationSpec;
use rlcx::clocktree::{BufferModel, ClockTreeAnalyzer};
use rlcx::core::{ClocktreeExtractor, TableBuilder};
use rlcx::geom::{Block, HTree, Stackup};
use rlcx::numeric::rng::SplitMix64;
use rlcx::numeric::stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stackup = Stackup::hp_six_metal_copper();
    println!("characterizing tables ...");
    let tables = TableBuilder::new(stackup.clone(), 5)?
        .widths(vec![2.0, 5.0, 10.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![400.0, 1600.0, 6400.0])
        .build()?;
    let extractor = ClocktreeExtractor::new(stackup, 5, tables)?;

    let htree = HTree::new(2, 6400.0)?;
    println!(
        "H-tree: {} levels, {} sinks, {:.1} mm total wire",
        htree.levels(),
        htree.sinks().len(),
        htree.total_wire_length() / 1000.0
    );
    let cross = Block::coplanar_waveguide(1.0, 5.0, 5.0, 1.0)?;
    let buffer = BufferModel::strong();

    // Nominal, symmetric: insertion delay with and without inductance.
    for (label, include_l) in [("RLC", true), ("RC ", false)] {
        let report = ClockTreeAnalyzer::new(&extractor, buffer)
            .include_inductance(include_l)
            .analyze(&htree, &cross)?;
        println!(
            "{label}: insertion delay {:.1} ps, nominal skew {:.3} ps",
            report.insertion_delay * 1e12,
            report.skew() * 1e12
        );
    }

    // Monte-Carlo: every stage instance gets its own geometry draw.
    println!("\nMonte-Carlo skew (nominal L + statistical RC, 10 samples):");
    let spec = VariationSpec::typical();
    let analyzer = ClockTreeAnalyzer::new(&extractor, buffer);
    let mut skews = Summary::new();
    for seed in 0..10 {
        let mut rng = SplitMix64::new(seed);
        let report = analyzer.analyze_with_variation(&htree, &cross, &spec, true, &mut rng)?;
        println!(
            "  seed {seed}: skew {:.2} ps (insertion {:.1} ps)",
            report.skew() * 1e12,
            report.insertion_delay * 1e12
        );
        skews.push(report.skew());
    }
    println!(
        "skew over samples: mean {:.2} ps, sigma {:.2} ps, worst {:.2} ps",
        skews.mean() * 1e12,
        skews.std_dev() * 1e12,
        skews.max() * 1e12
    );
    Ok(())
}
