//! Quickstart: characterize inductance tables, extract a clock segment and
//! simulate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's full flow on one segment:
//! 1. build self/mutual/loop inductance tables for the clock layer,
//! 2. look up the RLC model of a coplanar-waveguide segment,
//! 3. formulate the netlist and simulate the 50 % delay with and without
//!    inductance.

use rlcx::core::{ClocktreeExtractor, TableBuilder, TreeNetlistBuilder};
use rlcx::geom::{Block, SegmentTree, Stackup};
use rlcx::spice::{measure, Transient, Waveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pre-characterize tables for the thick top metal (layer index 5) at
    //    the significant frequency of 100 ps edges (0.32/t_r = 3.2 GHz).
    let stackup = Stackup::hp_six_metal_copper();
    println!("characterizing inductance tables for layer M6 ...");
    let tables = TableBuilder::new(stackup.clone(), 5)?
        .widths(vec![2.0, 5.0, 10.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![250.0, 1000.0, 4000.0])
        .frequency(3.2e9)
        .build()?;
    println!(
        "  self-L(5 um, 2 mm)  = {:.3} nH (spline-interpolated)",
        tables.self_l.lookup(5.0, 2000.0) * 1e9
    );
    println!(
        "  mutual-L(5, 5, 1 um, 2 mm) = {:.3} nH",
        tables.mutual_l.lookup(5.0, 5.0, 1.0, 2000.0) * 1e9
    );

    // 2. Extract one guarded clock segment: ground-signal-ground coplanar
    //    waveguide, 2 mm long.
    let extractor = ClocktreeExtractor::new(stackup, 5, tables)?;
    let segment = Block::coplanar_waveguide(2000.0, 5.0, 5.0, 1.0)?;
    let rlc = extractor.extract_segment(&segment)?;
    println!("\nsegment model (2 mm CPW, 5 um signal):");
    println!(
        "  R = {:.2} ohm, L = {:.3} nH, C = {:.3} pF",
        rlc.r,
        rlc.l * 1e9,
        rlc.c * 1e12
    );
    println!(
        "  Z0 = {:.1} ohm, time of flight = {:.1} ps, damping = {:.2}",
        rlc.characteristic_impedance(),
        rlc.time_of_flight() * 1e12,
        rlc.damping_factor()
    );

    // 3. Simulate the segment driven by a strong buffer, with and without
    //    inductance.
    let mut net = SegmentTree::new(0.0, 0.0);
    net.add_node(0, 2000.0, 0.0)?;
    for include_l in [false, true] {
        let out = TreeNetlistBuilder::new(&extractor)
            .include_inductance(include_l)
            .driver_resistance(15.0)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 50e-12))
            .build(&net, &segment)?;
        let result = Transient::new(&out.netlist)
            .timestep(0.5e-12)
            .duration(2e-9)
            .run()?;
        let time = result.time().to_vec();
        let vin = result.voltage("drv_in")?.to_vec();
        let vout = result.voltage(&out.sinks[0])?.to_vec();
        let delay =
            measure::delay_50(&time, &vin, &vout, 0.0, 1.8).ok_or("sink never reached midswing")?;
        let overshoot = measure::overshoot(&vout, 0.0, 1.8);
        println!(
            "  {}: delay = {:.1} ps, overshoot = {:.1} %",
            if include_l { "RLC" } else { "RC " },
            delay * 1e12,
            overshoot * 100.0
        );
    }
    Ok(())
}
