//! The paper's Figure 1 clock net, end to end, with waveform export.
//!
//! ```text
//! cargo run --release --example cpw_clock_net [-- output.csv]
//! ```
//!
//! Reproduces the Figures 2–3 comparison: a 6 mm coplanar-waveguide clock
//! net driven by a strong buffer, simulated as RC-only and as full RLC.
//! Prints delays/overshoot and optionally writes the three waveforms
//! (driver, sink-RC, sink-RLC) as CSV for plotting.

use rlcx::core::{ClocktreeExtractor, TableBuilder, TreeNetlistBuilder};
use rlcx::geom::{Block, SegmentTree, Stackup};
use rlcx::spice::{measure, writer, Transient, TransientResult, Waveform};
use std::io::Write as _;

const SWING: f64 = 1.8;

fn simulate(
    extractor: &ClocktreeExtractor,
    tree: &SegmentTree,
    cross: &Block,
    include_l: bool,
) -> Result<(TransientResult, String), Box<dyn std::error::Error>> {
    let out = TreeNetlistBuilder::new(extractor)
        .sections_per_segment(10)
        .include_inductance(include_l)
        .driver_resistance(15.0)
        .input(Waveform::ramp(0.0, SWING, 0.0, 50e-12))
        .sink_cap(30e-15)
        .build(tree, cross)?;
    let res = Transient::new(&out.netlist)
        .timestep(0.2e-12)
        .duration(1.5e-9)
        .run()?;
    Ok((res, out.sinks[0].clone()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)?
        .widths(vec![2.0, 5.0, 10.0, 20.0])
        .lengths(vec![500.0, 1500.0, 3000.0, 6000.0])
        .build()?;
    let extractor = ClocktreeExtractor::new(stackup, 5, tables)?;

    // Figure 1: 6000 µm, 10 µm signal, 5 µm grounds, 1 µm spacings.
    let mut tree = SegmentTree::new(0.0, 0.0);
    tree.add_node(0, 6000.0, 0.0)?;
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0)?;

    // Show the netlist the RLC extraction produces (SPICE deck excerpt).
    let deck_preview = {
        let out = TreeNetlistBuilder::new(&extractor)
            .sections_per_segment(2)
            .build(&tree, &cross)?;
        writer::to_spice(&out.netlist, "figure 1 clock net (2-section preview)")
    };
    println!("extracted SPICE deck (coarse preview):\n{deck_preview}");

    let (rc, sink) = simulate(&extractor, &tree, &cross, false)?;
    let (rlc, _) = simulate(&extractor, &tree, &cross, true)?;
    let time = rc.time().to_vec();
    let vin = rc.voltage("drv_in")?.to_vec();
    let v_rc = rc.voltage(&sink)?.to_vec();
    let v_rlc = rlc.voltage(&sink)?.to_vec();

    let d_rc = measure::delay_50(&time, &vin, &v_rc, 0.0, SWING).ok_or("no RC crossing")?;
    let d_rlc = measure::delay_50(&time, &vin, &v_rlc, 0.0, SWING).ok_or("no RLC crossing")?;
    println!("RC-only  delay: {:.2} ps (paper: 28.01 ps)", d_rc * 1e12);
    println!("with L   delay: {:.2} ps (paper: 47.60 ps)", d_rlc * 1e12);
    println!(
        "overshoot: RC {:.1} %, RLC {:.1} % (paper: visible over/undershoot with L)",
        measure::overshoot(&v_rc, 0.0, SWING) * 100.0,
        measure::overshoot(&v_rlc, 0.0, SWING) * 100.0
    );

    if let Some(path) = std::env::args().nth(1) {
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "time_ps,driver,sink_rc,sink_rlc")?;
        for i in (0..time.len()).step_by(5) {
            writeln!(
                f,
                "{:.3},{:.5},{:.5},{:.5}",
                time[i] * 1e12,
                vin[i],
                v_rc[i],
                v_rlc[i]
            )?;
        }
        println!("waveforms written to {path}");
    }
    Ok(())
}
