//! Regression test for epoch-based `reset_metrics()` (PR 7): resetting
//! while writer threads are mid-flight must never clear-under-load (the
//! old failure mode: a racing writer re-publishing a half-cleared shard),
//! and data recorded *after* the last reset must be exactly attributable.
//!
//! This lives in its own test binary: `reset_metrics()` invalidates every
//! metric process-wide, which would break the delta-based assertions of
//! any concurrently running observability test sharing the process.

use rlcx::obs::{self, MetricValue};
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn reset_under_load_is_race_free_and_exact() {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers hammer a counter, a gauge and a histogram continuously.
        for _ in 0..4 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    obs::counter_add("reset.test.counter", 1);
                    obs::gauge_set("reset.test.gauge", 1.0);
                    obs::observe("reset.test.hist", 2.0);
                }
            });
        }
        // Interleave resets with the writes. Any torn shard state (the
        // pre-epoch failure mode) shows up below as an impossible value.
        for _ in 0..200 {
            obs::reset_metrics();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiescent now. A final reset starts a fresh generation; everything
    // the writers recorded must be invisible.
    obs::reset_metrics();
    assert_eq!(obs::counter_value("reset.test.counter"), 0);
    assert_eq!(obs::metric_value("reset.test.gauge"), None);
    assert_eq!(obs::quantile("reset.test.hist", 0.5), None);
    assert!(
        !obs::metrics_snapshot()
            .iter()
            .any(|(n, _)| n.starts_with("reset.test.")),
        "stale generations must not appear in snapshots"
    );

    // Post-reset recordings are exact — no resurrection from old shards.
    obs::counter_add("reset.test.counter", 5);
    obs::gauge_set("reset.test.gauge", 2.5);
    for v in [1.0, 4.0] {
        obs::observe("reset.test.hist", v);
    }
    assert_eq!(obs::counter_value("reset.test.counter"), 5);
    assert_eq!(
        obs::metric_value("reset.test.gauge"),
        Some(MetricValue::Gauge(2.5))
    );
    match obs::metric_value("reset.test.hist") {
        Some(MetricValue::Histogram {
            count, min, max, ..
        }) => {
            assert_eq!(count, 2, "exactly the post-reset samples");
            assert_eq!((min, max), (1.0, 4.0));
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn series_reset_clears_channels() {
    obs::series_push("reset.test.series", 0.0, 1.0);
    assert!(obs::series_points("reset.test.series").is_some());
    obs::reset_series();
    assert!(obs::series_points("reset.test.series").is_none());
    // The channel comes back cleanly after a reset.
    obs::series_push("reset.test.series", 1.0, 2.0);
    assert_eq!(
        obs::series_points("reset.test.series"),
        Some(vec![(1.0, 2.0)])
    );
}
