//! Property suite for the PRIMA reduction stage.
//!
//! Seeded random RLC ladders (with mutual coupling) and randomized
//! asymmetric H-trees, checked for the three contracts the reduction
//! stage advertises:
//!
//! * moment matching — an order-`2q` model reproduces the first `2q`
//!   transfer moments of the full system about `s₀`,
//! * time-domain accuracy — closed-form 50 % delays agree with the
//!   LTE-controlled adaptive transient to well under 0.1 ps,
//! * passivity — all poles in the closed left half-plane and
//!   `Re{Ŷ(jω)} ≥ 0` across the band.

use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::numeric::Complex;
use rlcx::spice::reduce::{Reduce, ReductionOrder};
use rlcx::spice::{measure, AdaptiveOptions, Netlist, Stepping, Transient, Waveform, GROUND};

fn ramp() -> Waveform {
    Waveform::ramp(0.0, 1.0, 0.0, 20e-12)
}

/// Seeded random grounded ladder: `sections` series R(+L) segments with a
/// grounded C each, driven by a 20 ps ramp. With `coupled`, adjacent
/// coils get a mutual with coupling coefficient in [0.05, 0.25).
fn random_ladder(seed: u64, sections: usize, with_l: bool, coupled: bool) -> (Netlist, String) {
    let mut rng = SplitMix64::new(seed);
    let mut nl = Netlist::new();
    let input = nl.node("in");
    nl.vsource("Vin", input, GROUND, ramp()).unwrap();
    let mut prev = input;
    let mut coils = Vec::new();
    let mut henries = Vec::new();
    let mut last = String::new();
    for i in 0..sections {
        let r = rng.uniform(2.0, 40.0);
        let c = rng.uniform(4e-15, 40e-15);
        let name = format!("n{i}");
        let out = nl.node(&name);
        if with_l {
            let l = rng.uniform(50e-12, 400e-12);
            let mid = nl.node(format!("m{i}"));
            nl.resistor(&format!("R{i}"), prev, mid, r).unwrap();
            coils.push(nl.inductor(&format!("L{i}"), mid, out, l).unwrap());
            henries.push(l);
        } else {
            nl.resistor(&format!("R{i}"), prev, out, r).unwrap();
        }
        nl.capacitor(&format!("C{i}"), out, GROUND, c).unwrap();
        prev = out;
        last = name;
    }
    if coupled {
        for i in 0..coils.len().saturating_sub(1) {
            let k = rng.uniform(0.05, 0.25);
            let m = k * (henries[i] * henries[i + 1]).sqrt();
            nl.mutual(&format!("K{i}"), coils[i], coils[i + 1], m)
                .unwrap();
        }
    }
    (nl, last)
}

/// Randomized asymmetric H-tree: every branch draws its own per-section
/// R/L/C, so sink delays genuinely differ and skew is a real quantity.
fn random_h_tree(seed: u64, depth: usize, sections: usize) -> (Netlist, Vec<String>) {
    let mut rng = SplitMix64::new(seed);
    let mut nl = Netlist::new();
    let root = nl.node("root");
    nl.vsource("Vdrv", root, GROUND, ramp()).unwrap();
    let drv = nl.node("drv");
    nl.resistor("Rdrv", root, drv, 25.0).unwrap();
    let mut frontier = vec![drv];
    let mut names = Vec::new();
    let mut id = 0usize;
    for level in 0..depth {
        let scale = 0.5f64.powi(level as i32);
        let mut next = Vec::new();
        let mut next_names = Vec::new();
        for parent in std::mem::take(&mut frontier) {
            for _ in 0..2 {
                let mut prev = parent;
                for _ in 0..sections {
                    id += 1;
                    let r = rng.uniform(0.8, 1.6) * 2.0 * scale;
                    let l = rng.uniform(0.8, 1.6) * 0.15e-9 * scale;
                    let c = rng.uniform(0.8, 1.6) * 8e-15 * scale;
                    let mid = nl.node(format!("m{id}"));
                    let out = nl.node(format!("n{id}"));
                    nl.resistor(&format!("R{id}"), prev, mid, r).unwrap();
                    nl.inductor(&format!("L{id}"), mid, out, l).unwrap();
                    nl.capacitor(&format!("C{id}"), out, GROUND, c).unwrap();
                    prev = out;
                }
                next.push(prev);
                next_names.push(format!("n{id}"));
            }
        }
        frontier = next;
        names = next_names;
    }
    for (k, &leaf) in frontier.iter().enumerate() {
        nl.capacitor(&format!("Cload{k}"), leaf, GROUND, 4e-15)
            .unwrap();
    }
    (nl, names)
}

/// Adaptive-transient reference delays for the given sinks.
fn adaptive_delays(nl: &Netlist, source_node: &str, sinks: &[String], horizon: f64) -> Vec<f64> {
    let res = Transient::new(nl)
        .stepping(Stepping::Adaptive(AdaptiveOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            ..Default::default()
        }))
        .timestep(1e-12)
        .duration(horizon)
        .run()
        .unwrap();
    let t = res.time().to_vec();
    let vin = res.voltage(source_node).unwrap().to_vec();
    sinks
        .iter()
        .map(|s| {
            let vout = res.voltage(s).unwrap();
            measure::delay_50(&t, &vin, vout, 0.0, 1.0).unwrap()
        })
        .collect()
}

/// An order-2q model matches the first 2q moments of the full transfer
/// function about s₀ on random coupled RLC ladders.
#[test]
fn random_ladders_match_two_q_moments() {
    let q = 6;
    for seed in [101u64, 202, 303] {
        let (nl, sink) = random_ladder(seed, 15, true, true);
        let model = Reduce::new(&nl)
            .order(ReductionOrder::new(2 * q))
            .output(&sink)
            .run()
            .unwrap();
        assert_eq!(model.order(), 2 * q, "seed {seed}");
        let resid = model.moment_residual(2 * q).unwrap();
        assert!(resid <= 1e-8, "seed {seed}: 2q-moment residual {resid:.3e}");
    }
}

/// Closed-form 50 % delays from the reduced model agree with the
/// adaptive transient to 0.1 ps on random ladders, with and without
/// inductance and mutual coupling.
#[test]
fn random_ladder_delays_match_adaptive_transient() {
    for (seed, with_l, coupled) in [(7u64, true, true), (8, true, false), (9, false, false)] {
        let (nl, sink) = random_ladder(seed, 12, with_l, coupled);
        let horizon = 2e-9;
        let full = adaptive_delays(&nl, "in", std::slice::from_ref(&sink), horizon)[0];
        let model = Reduce::new(&nl)
            .order(ReductionOrder::new(20))
            .output(&sink)
            .run()
            .unwrap();
        let reduced = model
            .delay_50(&sink, horizon)
            .unwrap()
            .expect("sink crosses midswing");
        let err_ps = (full - reduced).abs() * 1e12;
        assert!(
            err_ps <= 0.1,
            "seed {seed} (L={with_l}, K={coupled}): delay err {err_ps:.4} ps"
        );
    }
}

/// Every reduced model of a passive random network is itself passive:
/// no right-half-plane poles and a positive-real input admittance.
#[test]
fn random_ladder_reductions_are_passive() {
    for seed in [41u64, 42, 43, 44, 45] {
        let (nl, sink) = random_ladder(seed, 14, true, seed % 2 == 0);
        let model = Reduce::new(&nl)
            .order(ReductionOrder::new(18))
            .output(&sink)
            .run()
            .unwrap();
        assert_eq!(model.unstable_count(), 0, "seed {seed}");
        for pole in model.poles() {
            assert!(
                pole.re <= 0.0,
                "seed {seed}: pole {pole} outside the closed LHP"
            );
        }
        for f in [1e7, 1e8, 1e9, 5e9, 2e10, 1e11] {
            let s = Complex::from_imag(2.0 * std::f64::consts::PI * f);
            let y = model.admittance_at(s).unwrap()[(0, 0)];
            assert!(
                y.re >= -1e-9 * y.abs().max(1.0),
                "seed {seed}, f={f}: Re Y = {}",
                y.re
            );
        }
    }
}

/// On a randomized asymmetric H-tree, per-sink delays and the resulting
/// skew from the reduced model agree with the adaptive transient to
/// 0.1 ps.
#[test]
fn random_h_tree_delays_and_skew_match() {
    let (nl, sinks) = random_h_tree(977, 3, 2);
    let horizon = 1.5e-9;
    let full = adaptive_delays(&nl, "root", &sinks, horizon);
    let model = Reduce::new(&nl)
        .order(ReductionOrder::new(24))
        .outputs(sinks.iter().map(String::as_str))
        .run()
        .unwrap();
    assert_eq!(model.unstable_count(), 0);
    let reduced: Vec<f64> = model
        .delay_50_all(horizon)
        .unwrap()
        .into_iter()
        .map(|d| d.expect("sink crosses midswing"))
        .collect();
    for ((sink, f), r) in sinks.iter().zip(&full).zip(&reduced) {
        let err_ps = (f - r).abs() * 1e12;
        assert!(err_ps <= 0.1, "{sink}: delay err {err_ps:.4} ps");
    }
    let skew = |d: &[f64]| {
        d.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v))
            - d.iter().fold(f64::INFINITY, |a, &v| a.min(v))
    };
    let (skew_full, skew_red) = (skew(&full), skew(&reduced));
    // The randomized branches must produce a real, nonzero skew for this
    // comparison to mean anything.
    assert!(skew_full > 0.5e-12, "degenerate skew {skew_full}");
    assert!(
        (skew_full - skew_red).abs() * 1e12 <= 0.1,
        "skew {skew_full} vs reduced {skew_red}"
    );
}
