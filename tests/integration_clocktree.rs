//! End-to-end clocktree analysis integration tests.

use rlcx::cap::VariationSpec;
use rlcx::clocktree::{BufferModel, ClockTreeAnalyzer};
use rlcx::core::{ClocktreeExtractor, TableBuilder};
use rlcx::geom::{Block, HTree, Stackup};
use rlcx::numeric::rng::SplitMix64;
use rlcx::peec::MeshSpec;

fn extractor() -> ClocktreeExtractor {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)
        .unwrap()
        .widths(vec![2.0, 5.0, 10.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![400.0, 1600.0, 6400.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    ClocktreeExtractor::new(stackup, 5, tables).unwrap()
}

fn cpw() -> Block {
    Block::coplanar_waveguide(1.0, 5.0, 5.0, 1.0).unwrap()
}

#[test]
fn deeper_trees_have_longer_insertion_delay() {
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::strong());
    let d1 = an.analyze(&HTree::new(1, 3200.0).unwrap(), &cpw()).unwrap();
    let d2 = an.analyze(&HTree::new(2, 3200.0).unwrap(), &cpw()).unwrap();
    assert!(d2.insertion_delay > d1.insertion_delay);
    assert_eq!(d1.sink_delays.len(), 4);
    assert_eq!(d2.sink_delays.len(), 16);
}

#[test]
fn wider_die_is_slower() {
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::strong());
    let small = an.analyze(&HTree::new(1, 1600.0).unwrap(), &cpw()).unwrap();
    let large = an.analyze(&HTree::new(1, 6400.0).unwrap(), &cpw()).unwrap();
    assert!(large.insertion_delay > small.insertion_delay);
}

#[test]
fn tapered_tree_root_width_matters() {
    // Wider root-level wiring lowers the root stage's resistance; with a
    // strong buffer the insertion delay drops (the RC component shrinks
    // faster than the L component grows).
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::strong());
    let htree = HTree::new(2, 6400.0).unwrap();
    let narrow = [cpw(), cpw()];
    let wide_root = [
        Block::coplanar_waveguide(1.0, 10.0, 10.0, 1.0).unwrap(),
        cpw(),
    ];
    let d_narrow = an.analyze_tapered(&htree, &narrow).unwrap();
    let d_tapered = an.analyze_tapered(&htree, &wide_root).unwrap();
    assert_ne!(d_narrow.insertion_delay, d_tapered.insertion_delay);
}

#[test]
fn rc_baseline_differs_from_rlc_by_more_than_skew_tolerance() {
    // The paper's motivating claim, as a regression test: on a large die
    // the wire-delay error from dropping L exceeds 10 %.
    let ex = extractor();
    let htree = HTree::new(1, 6400.0).unwrap();
    let stage = htree.level(0).unwrap().stage_tree();
    let rlc = ClockTreeAnalyzer::new(&ex, BufferModel::strong())
        .stage_delays(&stage, &cpw())
        .unwrap()[0];
    let rc = ClockTreeAnalyzer::new(&ex, BufferModel::strong())
        .include_inductance(false)
        .stage_delays(&stage, &cpw())
        .unwrap()[0];
    assert!(
        (rlc - rc).abs() / rc > 0.10,
        "wire delay error from dropping L: {:.1}%",
        (rlc - rc).abs() / rc * 100.0
    );
}

#[test]
fn variation_skew_is_reproducible_with_seed() {
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::strong());
    let htree = HTree::new(2, 3200.0).unwrap();
    let spec = VariationSpec::typical();
    let run = |seed: u64| {
        let mut rng = SplitMix64::new(seed);
        an.analyze_with_variation(&htree, &cpw(), &spec, true, &mut rng)
            .unwrap()
            .skew()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn nominal_l_variation_close_to_full_variation() {
    // The paper's shortcut (nominal L + statistical RC) should track the
    // full re-extraction closely, because L is the insensitive quantity.
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::strong());
    let htree = HTree::new(2, 3200.0).unwrap();
    let spec = VariationSpec::typical();
    let mut rng_a = SplitMix64::new(21);
    let mut rng_b = SplitMix64::new(21);
    let nominal_l = an
        .analyze_with_variation(&htree, &cpw(), &spec, true, &mut rng_a)
        .unwrap();
    let full = an
        .analyze_with_variation(&htree, &cpw(), &spec, false, &mut rng_b)
        .unwrap();
    let rel = (nominal_l.insertion_delay - full.insertion_delay).abs() / full.insertion_delay;
    assert!(rel < 0.05, "nominal-L shortcut drifted {rel}");
}

#[test]
fn stage_delay_positive_and_bounded() {
    let ex = extractor();
    let an = ClockTreeAnalyzer::new(&ex, BufferModel::typical());
    let htree = HTree::new(1, 3200.0).unwrap();
    let delays = an
        .stage_delays(&htree.level(0).unwrap().stage_tree(), &cpw())
        .unwrap();
    for d in delays {
        assert!(d > 1e-12 && d < 1e-9, "stage delay {d} out of band");
    }
}
