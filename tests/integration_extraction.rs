//! Cross-crate integration: geometry → field solver → tables.

use rlcx::core::TableBuilder;
use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Axis, Bar, Block, Point3, ShieldConfig, Stackup};
use rlcx::numeric::cholesky::is_positive_definite;
use rlcx::peec::loop_l::{loop_impedance, loop_rl};
use rlcx::peec::{BlockExtractor, Conductor, MeshSpec, PartialSystem};

fn stackup() -> Stackup {
    Stackup::hp_six_metal_copper()
}

#[test]
fn block_partial_matrix_is_physical() {
    // Any extracted partial-inductance matrix must be symmetric positive
    // definite with positive mutuals below the self terms.
    let block = Block::uniform_bus(800.0, 5, 2.0, 1.0).unwrap();
    let ex = BlockExtractor::new(stackup(), 5).unwrap();
    let out = ex.extract(&block).unwrap();
    assert_eq!(out.lp.rows(), 5);
    assert!(out.lp.symmetry_defect() < 1e-10);
    assert!(is_positive_definite(&out.lp));
    for i in 0..5 {
        for j in 0..5 {
            if i != j {
                assert!(out.lp[(i, j)] > 0.0);
                assert!(out.lp[(i, j)] < out.lp[(i, i)]);
            }
        }
    }
}

#[test]
fn foundation_1_self_lp_independent_of_block_context() {
    // The self Lp of every trace of a uniform bus equals the isolated
    // solve — Foundation 1 at the block level.
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap().clone();
    let bus = Block::uniform_bus(1000.0, 5, 3.0, 1.5).unwrap();
    let ex = BlockExtractor::new(layer_stack, 5).unwrap();
    let out = ex.extract(&bus).unwrap();
    let isolated = Bar::new(
        Point3::new(0.0, 0.0, layer.z_bottom()),
        Axis::X,
        1000.0,
        3.0,
        layer.thickness(),
    )
    .unwrap();
    let l_iso = rlcx::peec::partial::self_partial(&isolated);
    for i in 0..5 {
        let rel = (out.lp[(i, i)] - l_iso).abs() / l_iso;
        assert!(rel < 1e-9, "trace {i}: {rel}");
    }
}

#[test]
fn foundation_2_mutual_lp_depends_on_pair_only() {
    // The mutual between adjacent traces of a bus equals the 2-trace solve.
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap().clone();
    let bus = Block::uniform_bus(1000.0, 5, 3.0, 1.5).unwrap();
    let ex = BlockExtractor::new(stackup(), 5).unwrap();
    let full = ex.extract(&bus).unwrap();
    let z = layer.z_bottom();
    let a = Bar::new(
        Point3::new(0.0, 0.0, z),
        Axis::X,
        1000.0,
        3.0,
        layer.thickness(),
    )
    .unwrap();
    let b = Bar::new(
        Point3::new(0.0, 4.5, z),
        Axis::X,
        1000.0,
        3.0,
        layer.thickness(),
    )
    .unwrap();
    let m_pair = rlcx::peec::partial::mutual_partial(&a, &b);
    for i in 0..4 {
        let rel = (full.lp[(i, i + 1)] - m_pair).abs() / m_pair;
        assert!(rel < 1e-9, "pair ({i},{}): {rel}", i + 1);
    }
}

#[test]
fn loop_reduction_agrees_with_block_extractor() {
    // Assembling the CPW by hand and reducing must match BlockExtractor.
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap().clone();
    let block = Block::coplanar_waveguide(1200.0, 8.0, 8.0, 1.0).unwrap();
    let ex = BlockExtractor::new(stackup(), 5)
        .unwrap()
        .mesh(MeshSpec::new(2, 2));
    let via_extractor = ex.extract(&block).unwrap().loop_l[(0, 0)];

    let bars = block.to_bars(&layer, Axis::X, 0.0, 0.0);
    let sys: PartialSystem = bars
        .iter()
        .map(|&b| Conductor::new(b, layer.resistivity()).unwrap())
        .collect();
    let z = sys.impedance_at(3.2e9, MeshSpec::new(2, 2)).unwrap();
    let zl = loop_impedance(&z, &[1], &[0, 2]).unwrap();
    let (_, l) = loop_rl(&zl, 2.0 * std::f64::consts::PI * 3.2e9);
    let by_hand = l[(0, 0)];
    assert!(
        (via_extractor - by_hand).abs() / by_hand < 1e-9,
        "{via_extractor} vs {by_hand}"
    );
}

#[test]
fn guard_wires_shield_inter_system_coupling() {
    // Paper Section IV: "those two guarded ground wires completely shield
    // the inductive coupling between one multi-conductor system and its
    // environment", and "the shielding will improve if wider ground wires
    // are used". Two CPW systems side by side: the loop-coupling
    // coefficient between their signals must be small and must shrink as
    // the guards widen.
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap().clone();
    let omega = 2.0 * std::f64::consts::PI * 3.2e9;
    let coupling = |gw: f64| {
        let mut sys = PartialSystem::new();
        let mut y = 0.0;
        // G S G | gap | G S G, signal width 4, spacing 1, systems 10 apart.
        let push = |sys: &mut PartialSystem, y: &mut f64, w: f64, gap: f64| {
            let bar = Bar::new(
                Point3::new(0.0, *y, layer.z_bottom()),
                Axis::X,
                1000.0,
                w,
                layer.thickness(),
            )
            .unwrap();
            sys.push(Conductor::new(bar, layer.resistivity()).unwrap());
            *y += w + gap;
        };
        for (w, gap) in [
            (gw, 1.0),
            (4.0, 1.0),
            (gw, 10.0), // system 1 + inter-system gap
            (gw, 1.0),
            (4.0, 1.0),
            (gw, 0.0), // system 2
        ] {
            push(&mut sys, &mut y, w, gap);
        }
        let z = sys.impedance_at(3.2e9, MeshSpec::new(3, 2)).unwrap();
        let zl = loop_impedance(&z, &[1, 4], &[0, 2, 3, 5]).unwrap();
        let (_, l) = loop_rl(&zl, omega);
        l[(0, 1)].abs() / (l[(0, 0)] * l[(1, 1)]).sqrt()
    };
    let k_narrow = coupling(2.0);
    let k_wide = coupling(8.0);
    assert!(k_narrow < 0.35, "guards should shield: k = {k_narrow}");
    assert!(
        k_wide < k_narrow,
        "wider guards shield better: {k_wide} vs {k_narrow}"
    );
}

#[test]
fn loop_l_increases_with_spacing() {
    // Pushing the returns away grows the loop area.
    let ex = BlockExtractor::new(stackup(), 5)
        .unwrap()
        .mesh(MeshSpec::new(2, 1));
    let mut last = 0.0;
    for s in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let block = Block::coplanar_waveguide(1000.0, 4.0, 4.0, s).unwrap();
        let l = ex.extract(&block).unwrap().loop_l[(0, 0)];
        assert!(l > last, "s = {s}: {l} !> {last}");
        last = l;
    }
}

#[test]
fn tables_reproduce_solver_at_grid_points() {
    let tables = TableBuilder::new(stackup(), 5)
        .unwrap()
        .widths(vec![2.0, 5.0, 10.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![250.0, 1000.0, 4000.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    // At a grid point the spline passes through the sample exactly, so the
    // lookup equals a fresh solve with identical settings.
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap();
    let bar = Bar::new(
        Point3::new(0.0, 0.0, layer.z_bottom()),
        Axis::X,
        1000.0,
        5.0,
        layer.thickness(),
    )
    .unwrap();
    let sys: PartialSystem = [Conductor::new(bar, layer.resistivity()).unwrap()]
        .into_iter()
        .collect();
    let (_, l) = sys.rl_at(3.2e9, MeshSpec::new(2, 1)).unwrap();
    let rel = (tables.self_l.lookup(5.0, 1000.0) - l[(0, 0)]).abs() / l[(0, 0)];
    assert!(rel < 1e-9, "grid-point lookup must be exact: {rel}");
}

#[test]
fn microstrip_loop_table_below_coplanar_for_wide_signals() {
    let tables = TableBuilder::new(stackup(), 5)
        .unwrap()
        .widths(vec![5.0, 10.0, 20.0])
        .spacings(vec![1.0, 2.0])
        .lengths(vec![500.0, 1000.0, 2000.0])
        .shields(vec![ShieldConfig::Coplanar, ShieldConfig::PlaneBelow])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    let cpw = tables.loop_table(ShieldConfig::Coplanar).unwrap();
    let ms = tables.loop_table(ShieldConfig::PlaneBelow).unwrap();
    for &w in &[10.0, 20.0] {
        assert!(ms.lookup_l(w, 2000.0) < cpw.lookup_l(w, 2000.0));
    }
}

#[test]
fn skin_effect_visible_between_dc_and_significant_frequency() {
    let layer_stack = stackup();
    let layer = layer_stack.layer(5).unwrap();
    let bar = Bar::new(
        Point3::new(0.0, 0.0, layer.z_bottom()),
        Axis::X,
        2000.0,
        20.0,
        layer.thickness(),
    )
    .unwrap();
    let sys: PartialSystem = [Conductor::new(bar, RHO_COPPER).unwrap()]
        .into_iter()
        .collect();
    let mesh = MeshSpec::new(6, 3);
    let (r_lo, l_lo) = sys.rl_at(1e6, mesh).unwrap();
    let (r_hi, l_hi) = sys.rl_at(1e10, mesh).unwrap();
    assert!(r_hi[(0, 0)] > r_lo[(0, 0)]);
    assert!(l_hi[(0, 0)] < l_lo[(0, 0)]);
}
