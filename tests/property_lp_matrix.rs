//! Structural properties of the partial-inductance matrix over seeded
//! random bus geometries: symmetry, positive diagonal, and the passivity
//! bound |Lp[i][j]| < sqrt(Lp[i][i] * Lp[j][j]).

use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Axis, Bar, Point3};
use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::peec::{Conductor, PartialSystem};

/// A random non-overlapping parallel bus on one layer: widths, spacings,
/// thicknesses and length drawn from on-chip ranges.
fn random_bus(rng: &mut SplitMix64, n: usize) -> PartialSystem {
    let len = rng.uniform(200.0, 3000.0);
    let t = rng.uniform(1.0, 3.0);
    let mut y = 0.0;
    (0..n)
        .map(|_| {
            let w = rng.uniform(0.8, 12.0);
            let bar = Bar::new(Point3::new(0.0, y, 9.4), Axis::X, len, w, t).unwrap();
            y += w + rng.uniform(0.5, 20.0);
            Conductor::new(bar, RHO_COPPER).unwrap()
        })
        .collect()
}

#[test]
fn lp_matrix_is_symmetric_with_positive_diagonal() {
    let mut rng = SplitMix64::new(0x2001);
    for _ in 0..24 {
        let n = 2 + (rng.next_u64() % 5) as usize;
        let lp = random_bus(&mut rng, n).lp_matrix();
        for i in 0..n {
            assert!(lp[(i, i)] > 0.0, "Lp[{i}][{i}] = {}", lp[(i, i)]);
            for j in 0..n {
                assert_eq!(
                    lp[(i, j)].to_bits(),
                    lp[(j, i)].to_bits(),
                    "Lp[{i}][{j}] != Lp[{j}][{i}]"
                );
            }
        }
    }
}

#[test]
fn lp_matrix_satisfies_passivity_bound() {
    let mut rng = SplitMix64::new(0x2002);
    for _ in 0..24 {
        let n = 2 + (rng.next_u64() % 5) as usize;
        let lp = random_bus(&mut rng, n).lp_matrix();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let bound = (lp[(i, i)] * lp[(j, j)]).sqrt();
                assert!(
                    lp[(i, j)].abs() < bound,
                    "|Lp[{i}][{j}]| = {} >= {bound}",
                    lp[(i, j)].abs()
                );
            }
        }
    }
}

/// The assembly is sharded by row index, so the matrix must be
/// bit-identical no matter how many threads fill it.
#[test]
fn lp_matrix_is_bit_identical_across_thread_counts() {
    let mut rng = SplitMix64::new(0x2003);
    for _ in 0..6 {
        let n = 3 + (rng.next_u64() % 6) as usize;
        let sys = random_bus(&mut rng, n);
        let serial = sys.lp_matrix_with_threads(1);
        for threads in [2usize, 3, 7, 16] {
            let par = sys.lp_matrix_with_threads(threads);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        serial[(i, j)].to_bits(),
                        par[(i, j)].to_bits(),
                        "threads={threads}, entry ({i},{j})"
                    );
                }
            }
        }
    }
}
