//! The paper's headline claims, as regression tests.
//!
//! Each test corresponds to a row of `EXPERIMENTS.md`: if one of these
//! breaks, the repository no longer reproduces the paper.

use rlcx::core::{ClocktreeExtractor, TableBuilder, TreeNetlistBuilder};
use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Block, SegmentTree, Stackup};
use rlcx::peec::partial::{mutual_filaments_aligned_m, self_partial_ruehli};
use rlcx::peec::{FlatTreeSolver, MeshSpec};
use rlcx::spice::{measure, AdaptiveOptions, Stepping, Transient, Waveform};

/// E1 (Figures 1–3): with a strong driver the 6 mm CPW's delay with
/// inductance clearly exceeds the RC-only delay and the RLC waveform
/// overshoots — the paper's 28.01 ps vs 47.6 ps contrast.
#[test]
fn e1_cpw_delay_contrast() {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)
        .unwrap()
        .widths(vec![5.0, 10.0, 20.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![1500.0, 3000.0, 6000.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    let ex = ClocktreeExtractor::new(stackup, 5, tables).unwrap();
    let mut tree = SegmentTree::new(0.0, 0.0);
    tree.add_node(0, 6000.0, 0.0).unwrap();
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let run = |include_l: bool| {
        let out = TreeNetlistBuilder::new(&ex)
            .sections_per_segment(10)
            .include_inductance(include_l)
            .driver_resistance(15.0)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 50e-12))
            .sink_cap(30e-15)
            .build(&tree, &cross)
            .unwrap();
        let res = Transient::new(&out.netlist)
            .timestep(0.2e-12)
            .duration(1.5e-9)
            .run()
            .unwrap();
        let t = res.time().to_vec();
        let vin = res.voltage("drv_in").unwrap().to_vec();
        let vout = res.voltage(&out.sinks[0]).unwrap().to_vec();
        (
            measure::delay_50(&t, &vin, &vout, 0.0, 1.8).unwrap(),
            measure::overshoot(&vout, 0.0, 1.8),
        )
    };
    let (d_rc, os_rc) = run(false);
    let (d_rlc, os_rlc) = run(true);
    // Paper ratio: 47.6/28.01 = 1.70. Demand at least 1.4 and at most 2.5.
    let ratio = d_rlc / d_rc;
    assert!(ratio > 1.4 && ratio < 2.5, "delay ratio {ratio}");
    assert!(os_rlc > 0.1, "RLC overshoot {os_rlc}");
    assert!(os_rc < 1e-6, "RC overshoot {os_rc}");
    // Absolute bands (loose): tens of picoseconds.
    assert!(d_rc > 10e-12 && d_rc < 80e-12, "RC delay {d_rc}");
    assert!(d_rlc > 25e-12 && d_rlc < 150e-12, "RLC delay {d_rlc}");
}

/// E3 (Table I): linear cascading of the Figure 6 trees — flat vs
/// series/parallel combination within a few percent (paper: 3.57 % and
/// 1.55 %).
#[test]
fn e3_linear_cascading_error_small() {
    let solver = FlatTreeSolver::new(1.2, 1.2, 0.6, 0.8, RHO_COPPER)
        .unwrap()
        .frequency(3.2e9);
    for (tree, paper_err) in [(SegmentTree::fig6a(), 3.57), (SegmentTree::fig6b(), 1.55)] {
        let flat = solver.flat_loop_inductance(&tree).unwrap();
        let casc = solver.cascaded_loop_inductance(&tree).unwrap();
        let err = (flat - casc).abs() / flat * 100.0;
        // Our guarded structures cascade at least as well as the paper's.
        assert!(
            err <= paper_err + 1.0,
            "cascading error {err}% vs paper {paper_err}%"
        );
    }
}

/// E5: self and mutual inductance grow super-linearly with length; the
/// 1000 → 2000 µm ratio is clearly above 2 (paper Section V).
#[test]
fn e5_superlinear_inductance() {
    let l1 = self_partial_ruehli(1000.0, 10.0, 2.0);
    let l2 = self_partial_ruehli(2000.0, 10.0, 2.0);
    assert!(l2 / l1 > 2.15 && l2 / l1 < 2.35, "self ratio {}", l2 / l1);
    let m1 = mutual_filaments_aligned_m(1000e-6, 11e-6);
    let m2 = mutual_filaments_aligned_m(2000e-6, 11e-6);
    assert!(m2 / m1 > 2.2 && m2 / m1 < 2.5, "mutual ratio {}", m2 / m1);
}

/// E6: table lookup reproduces the field solver within 1 % at off-grid
/// points — "without loss of accuracy".
#[test]
fn e6_table_accuracy_within_one_percent() {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)
        .unwrap()
        .widths(vec![1.0, 2.0, 5.0, 10.0, 20.0])
        .spacings(vec![0.5, 1.0, 2.0, 5.0])
        .lengths(vec![200.0, 400.0, 800.0, 1600.0, 3200.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    let layer = stackup.layer(5).unwrap();
    use rlcx::geom::{Axis, Bar, Point3};
    use rlcx::peec::{Conductor, PartialSystem};
    for (w, len) in [(3.0, 600.0), (7.0, 1200.0), (15.0, 2400.0)] {
        let bar = Bar::new(
            Point3::new(0.0, 0.0, layer.z_bottom()),
            Axis::X,
            len,
            w,
            layer.thickness(),
        )
        .unwrap();
        let sys: PartialSystem = [Conductor::new(bar, layer.resistivity()).unwrap()]
            .into_iter()
            .collect();
        let (_, l) = sys.rl_at(3.2e9, MeshSpec::new(2, 1)).unwrap();
        let rel = (tables.self_l.lookup(w, len) - l[(0, 0)]).abs() / l[(0, 0)];
        assert!(rel < 0.01, "w={w}, len={len}: {rel}");
    }
}

/// E7: partial self inductance is an order of magnitude less sensitive to
/// width/thickness variation than resistance (the basis for "nominal L +
/// statistical RC").
#[test]
fn e7_inductance_insensitive_to_geometry() {
    // ±10 % width and thickness happening together.
    let nominal_l = self_partial_ruehli(2000.0, 10.0, 2.0);
    let nominal_r = RHO_COPPER * 2000e-6 / (10e-6 * 2e-6);
    let worst_l = self_partial_ruehli(2000.0, 9.0, 1.8);
    let worst_r = RHO_COPPER * 2000e-6 / (9e-6 * 1.8e-6);
    let dl = (worst_l - nominal_l).abs() / nominal_l;
    let dr = (worst_r - nominal_r).abs() / nominal_r;
    assert!(dl < 0.02, "L moved {dl}");
    assert!(dr > 0.15, "R moved {dr}");
    assert!(dr / dl > 10.0, "sensitivity ratio {}", dr / dl);
}

/// Section IV: per-segment extraction *underestimates* inductance relative
/// to whole-length extraction when segments are unguarded (collinear
/// coupling), which is exactly what guard wires fix.
#[test]
fn segment_underestimation_without_guards() {
    use rlcx::geom::{Axis, Bar, Point3};
    use rlcx::peec::partial::{mutual_partial, self_partial};
    let half = 1000.0;
    let a = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, half, 10.0, 2.0).unwrap();
    let b = Bar::new(Point3::new(half, 0.0, 9.4), Axis::X, half, 10.0, 2.0).unwrap();
    let whole = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, 2.0 * half, 10.0, 2.0).unwrap();
    let sum_of_parts = self_partial(&a) + self_partial(&b);
    let l_whole = self_partial(&whole);
    assert!(
        l_whole > 1.05 * sum_of_parts,
        "whole {l_whole} vs parts {sum_of_parts}"
    );
    // The missing piece is exactly twice the inter-segment mutual.
    let m = mutual_partial(&a, &b);
    let reconstructed = sum_of_parts + 2.0 * m;
    assert!((reconstructed - l_whole).abs() / l_whole < 0.02);
}

/// Section IV continued: with guard wires, the cascading error of a split
/// straight run is far below the unguarded underestimation.
#[test]
fn guards_enable_cascading() {
    let solver = FlatTreeSolver::new(5.0, 5.0, 1.0, 2.0, RHO_COPPER)
        .unwrap()
        .frequency(3.2e9);
    let mut split = SegmentTree::new(0.0, 0.0);
    let mid = split.add_node(0, 1000.0, 0.0).unwrap();
    split.add_node(mid, 2000.0, 0.0).unwrap();
    let flat = solver.flat_loop_inductance(&split).unwrap();
    let casc = solver.cascaded_loop_inductance(&split).unwrap();
    let guarded_err = (flat - casc).abs() / flat;
    // Unguarded self-L underestimation for the same split is >10 % (per the
    // previous test: 2M/L_whole); guarded cascading is several times better.
    assert!(guarded_err < 0.06, "guarded cascading error {guarded_err}");
}

/// Table V: skew sign-off needs inductance-aware delays. On an asymmetric
/// tree the passive PRIMA macromodel — answering every sink in closed
/// form — stays within 0.1 ps of the transient reference, while the
/// Elmore (first-moment RC) screen misjudges the same skew by well over
/// 10 %: the paper's RLC-vs-Elmore gap.
#[test]
fn table_v_reduced_rlc_skew_vs_elmore_gap() {
    use rlcx::clocktree::elmore;
    use rlcx::spice::reduce::{Reduce, ReductionOrder};

    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)
        .unwrap()
        .widths(vec![5.0, 10.0, 20.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![1000.0, 2500.0, 6000.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    let ex = ClocktreeExtractor::new(stackup, 5, tables).unwrap();
    // Asymmetric tree: one short sink, one long two-segment path.
    let mut tree = SegmentTree::new(0.0, 0.0);
    tree.add_node(0, 2000.0, 0.0).unwrap();
    let mid = tree.add_node(0, 0.0, 2500.0).unwrap();
    tree.add_node(mid, 3000.0, 2500.0).unwrap();
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let out = TreeNetlistBuilder::new(&ex)
        .sections_per_segment(8)
        .driver_resistance(15.0)
        .input(Waveform::ramp(0.0, 1.8, 0.0, 50e-12))
        .sink_cap(30e-15)
        .build(&tree, &cross)
        .unwrap();

    // Closed-form sink delays from the reduced macromodel.
    let horizon = 1.5e-9;
    let model = Reduce::new(&out.netlist)
        .order(ReductionOrder::new(36))
        .outputs(out.sinks.iter().map(String::as_str))
        .run()
        .unwrap();
    assert_eq!(model.unstable_count(), 0);
    let reduced: Vec<f64> = model
        .delay_50_all(horizon)
        .unwrap()
        .into_iter()
        .map(|d| d.expect("sink crosses midswing"))
        .collect();

    // Transient reference: the macromodel must agree to 0.1 ps per sink.
    let res = Transient::new(&out.netlist)
        .stepping(Stepping::Adaptive(AdaptiveOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            ..Default::default()
        }))
        .timestep(1e-12)
        .duration(horizon)
        .run()
        .unwrap();
    let t = res.time().to_vec();
    let vin = res.voltage("drv_in").unwrap().to_vec();
    for (sink, red) in out.sinks.iter().zip(&reduced) {
        let vout = res.voltage(sink).unwrap();
        let full = measure::delay_50(&t, &vin, vout, 0.0, 1.8).unwrap();
        let err_ps = (full - red).abs() * 1e12;
        assert!(err_ps <= 0.1, "{sink}: reduced vs transient {err_ps:.4} ps");
    }

    // The Elmore screen misjudges the same skew by well over 10 %.
    let est = elmore::estimate(&ex, &tree, &cross, 15.0, 30e-15).unwrap();
    let skew = |d: &[f64]| {
        d.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v))
            - d.iter().fold(f64::INFINITY, |a, &v| a.min(v))
    };
    let skew_rlc = skew(&reduced);
    let skew_elmore = skew(&est.elmore);
    assert!(skew_rlc > 1e-12, "degenerate RLC skew {skew_rlc}");
    let gap = (skew_rlc - skew_elmore).abs() / skew_rlc;
    assert!(
        gap > 0.10,
        "RLC skew {skew_rlc:.3e} vs Elmore {skew_elmore:.3e}: gap {gap:.3}"
    );
}
