//! Backend-equivalence properties of the filament impedance solve over
//! seeded random geometries: the matrix-free iterative path (kernel-cached
//! hierarchical operator + preconditioned GMRES) must reproduce the dense
//! LU path to far beyond table accuracy, and the automatic backend must be
//! bit-identical to dense below the cutover.

use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Axis, Bar, Point3};
use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::peec::{Conductor, MeshSpec, PartialSystem, SolverBackend, ITERATIVE_CUTOVER};

/// A random coplanar bus: `n` parallel traces on one layer with random
/// widths and gaps, random thickness and length.
fn random_cpw(rng: &mut SplitMix64, n: usize) -> PartialSystem {
    let len = rng.uniform(300.0, 2500.0);
    let t = rng.uniform(1.0, 3.0);
    let mut y = 0.0;
    (0..n)
        .map(|_| {
            let w = rng.uniform(1.0, 12.0);
            let bar = Bar::new(Point3::new(0.0, y, 10.0), Axis::X, len, w, t).unwrap();
            y += w + rng.uniform(0.6, 8.0);
            Conductor::new(bar, RHO_COPPER).unwrap()
        })
        .collect()
}

/// A random microstrip: one signal trace over a wide plane conductor two
/// to six microns below it.
fn random_microstrip(rng: &mut SplitMix64) -> PartialSystem {
    let len = rng.uniform(300.0, 2500.0);
    let t = rng.uniform(1.0, 3.0);
    let w = rng.uniform(2.0, 12.0);
    let h = rng.uniform(2.0, 6.0);
    let plane_w = rng.uniform(30.0, 80.0);
    let sig = Bar::new(
        Point3::new(0.0, 0.5 * (plane_w - w), 8.0 + h),
        Axis::X,
        len,
        w,
        t,
    )
    .unwrap();
    let plane = Bar::new(Point3::new(0.0, 0.0, 8.0 - t), Axis::X, len, plane_w, t).unwrap();
    [sig, plane]
        .into_iter()
        .map(|bar| Conductor::new(bar, RHO_COPPER).unwrap())
        .collect()
}

/// A random plane-strip system: a wide ground plane with several narrow
/// strips routed above it — the geometry class the H² far field exists
/// for (many well-separated same-layer clusters over a common return).
fn random_plane_strips(rng: &mut SplitMix64, n_strips: usize) -> PartialSystem {
    let len = rng.uniform(300.0, 2000.0);
    let t = rng.uniform(0.8, 2.0);
    let h = rng.uniform(2.0, 5.0);
    let plane_w = rng.uniform(60.0, 120.0);
    let mut bars =
        vec![Bar::new(Point3::new(0.0, 0.0, 8.0 - t), Axis::X, len, plane_w, t).unwrap()];
    let mut y = rng.uniform(2.0, 6.0);
    for _ in 0..n_strips {
        let w = rng.uniform(1.0, 6.0);
        bars.push(Bar::new(Point3::new(0.0, y, 8.0 + h), Axis::X, len, w, t).unwrap());
        y += w + rng.uniform(8.0, 20.0);
    }
    bars.into_iter()
        .map(|bar| Conductor::new(bar, RHO_COPPER).unwrap())
        .collect()
}

/// Max entrywise |dense − iterative| relative to the largest dense entry.
fn backend_disagreement(sys: &PartialSystem, f: f64, mesh: MeshSpec) -> f64 {
    let zd = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Dense)
        .unwrap();
    let zi = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Iterative)
        .unwrap();
    let n = sys.len();
    let mut scale = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            scale = scale.max(zd[(i, j)].abs());
        }
    }
    let mut err = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            err = err.max((zd[(i, j)] - zi[(i, j)]).abs() / scale);
        }
    }
    err
}

#[test]
fn iterative_backend_matches_dense_on_random_cpw_buses() {
    let mut rng = SplitMix64::new(0x5EEC);
    for round in 0..6 {
        let n = 2 + (rng.next_u64() % 3) as usize;
        let sys = random_cpw(&mut rng, n);
        let f = rng.uniform(5e8, 8e9);
        let err = backend_disagreement(&sys, f, MeshSpec::new(4, 3));
        assert!(err < 1e-9, "round {round}: backends disagree by {err:.3e}");
    }
}

#[test]
fn iterative_backend_matches_dense_on_random_microstrips() {
    let mut rng = SplitMix64::new(0xA11C);
    for round in 0..6 {
        let sys = random_microstrip(&mut rng);
        let f = rng.uniform(5e8, 8e9);
        let err = backend_disagreement(&sys, f, MeshSpec::new(5, 3));
        assert!(err < 1e-9, "round {round}: backends disagree by {err:.3e}");
    }
}

#[test]
fn iterative_backend_matches_dense_on_random_plane_strips() {
    let mut rng = SplitMix64::new(0x91A7E);
    for round in 0..4 {
        let n = 2 + (rng.next_u64() % 2) as usize;
        let sys = random_plane_strips(&mut rng, n);
        let f = rng.uniform(5e8, 8e9);
        let err = backend_disagreement(&sys, f, MeshSpec::new(5, 3));
        assert!(err < 1e-9, "round {round}: backends disagree by {err:.3e}");
    }
}

#[test]
fn auto_backend_stays_dense_below_cutover() {
    // Below the cutover Auto must be *bit-identical* to Dense — the H²
    // far field only ever engages on the iterative side.
    let mut rng = SplitMix64::new(0xD00D);
    let sys = random_plane_strips(&mut rng, 2);
    let mesh = MeshSpec::new(4, 3);
    assert!(sys.len() * mesh.nw() * mesh.nt() < ITERATIVE_CUTOVER);
    let f = 3.2e9;
    let za = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Auto)
        .unwrap();
    let zd = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Dense)
        .unwrap();
    let n = sys.len();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(za[(i, j)].re.to_bits(), zd[(i, j)].re.to_bits());
            assert_eq!(za[(i, j)].im.to_bits(), zd[(i, j)].im.to_bits());
        }
    }
}

#[test]
fn auto_backend_crosses_to_iterative_and_still_agrees() {
    // A mesh big enough that Auto takes the matrix-free path; Auto must
    // then be bit-identical to the explicitly iterative backend, and both
    // within solver precision of dense.
    let mut rng = SplitMix64::new(0xC0DE);
    let sys = random_cpw(&mut rng, 3);
    let mesh = MeshSpec::new(15, 10);
    assert!(sys.len() * mesh.nw() * mesh.nt() > ITERATIVE_CUTOVER);
    let f = 3.2e9;
    let za = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Auto)
        .unwrap();
    let zi = sys
        .impedance_at_with_backend(f, |_| mesh, SolverBackend::Iterative)
        .unwrap();
    for i in 0..3 {
        for j in 0..3 {
            assert_eq!(za[(i, j)].re.to_bits(), zi[(i, j)].re.to_bits());
            assert_eq!(za[(i, j)].im.to_bits(), zi[(i, j)].im.to_bits());
        }
    }
    let err = backend_disagreement(&sys, f, mesh);
    assert!(err < 1e-9, "above-cutover disagreement {err:.3e}");
}
