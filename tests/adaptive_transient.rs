//! Event-accurate adaptive transient vs closed-form RLC theory.
//!
//! A series RLC driven by an ideal unit step has textbook solutions in all
//! three damping regimes, so every measurement kernel the paper relies on
//! (50 % crossing, overshoot, undershoot, skew) can be checked against an
//! *exact* value — and the adaptive time axis must reproduce them without
//! being told where the action is.

use rlcx::spice::{measure, AdaptiveOptions, Netlist, Stepping, Transient, Waveform, GROUND};

/// Analytic unit-step response of a series RLC (voltage across C),
/// v(0) = 0, i(0) = 0.
fn rlc_step_response(r: f64, l: f64, c: f64) -> impl Fn(f64) -> f64 {
    let alpha = r / (2.0 * l);
    let w0sq = 1.0 / (l * c);
    move |t: f64| {
        let d = alpha * alpha - w0sq;
        if d < -1e-9 * w0sq {
            // Underdamped.
            let wd = (-d).sqrt();
            1.0 - (-alpha * t).exp() * ((wd * t).cos() + alpha / wd * (wd * t).sin())
        } else if d > 1e-9 * w0sq {
            // Overdamped.
            let s1 = -alpha + d.sqrt();
            let s2 = -alpha - d.sqrt();
            1.0 - (s2 * (s1 * t).exp() - s1 * (s2 * t).exp()) / (s2 - s1)
        } else {
            // Critically damped.
            1.0 - (-alpha * t).exp() * (1.0 + alpha * t)
        }
    }
}

/// Bisection to ~1e-25 s on a bracketed sign change.
fn bisect(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    let flo = f(lo);
    assert!(flo * f(hi) <= 0.0, "root not bracketed");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if (f(mid) > 0.0) == (flo > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn series_rlc(r: f64, l: f64, c: f64) -> Netlist {
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let a = nl.node("a");
    let out = nl.node("out");
    nl.vsource("V", inp, GROUND, Waveform::step(1.0, 0.0))
        .unwrap();
    nl.resistor("R", inp, a, r).unwrap();
    nl.inductor("L", a, out, l).unwrap();
    nl.capacitor("C", out, GROUND, c).unwrap();
    nl
}

fn run_adaptive(nl: &Netlist, duration: f64) -> rlcx::spice::TransientResult {
    Transient::new(nl)
        .timestep(2e-13)
        .duration(duration)
        .stepping(Stepping::Adaptive(AdaptiveOptions {
            reltol: 1e-5,
            ..Default::default()
        }))
        .run()
        .unwrap()
}

/// Max deviation between simulated and analytic response over `n` probes.
fn worst_error(
    res: &rlcx::spice::TransientResult,
    exact: &impl Fn(f64) -> f64,
    duration: f64,
    n: usize,
) -> f64 {
    let mut worst = 0.0_f64;
    for i in 1..=n {
        let t = duration * i as f64 / n as f64;
        let v = res.voltage_at("out", t).unwrap();
        worst = worst.max((v - exact(t)).abs());
    }
    worst
}

#[test]
fn underdamped_rlc_matches_closed_form() {
    // α = 1e10 < ω₀ ≈ 3.16e10 → ringing at ωd = 3e10 rad/s.
    let (r, l, c) = (20.0, 1e-9, 1e-12);
    let exact = rlc_step_response(r, l, c);
    let nl = series_rlc(r, l, c);
    let duration = 2e-9;
    let res = run_adaptive(&nl, duration);

    let worst = worst_error(&res, &exact, duration, 400);
    assert!(worst < 2e-3, "worst deviation {worst} V from analytic");

    // 50 % crossing within 0.1 ps of the exact (bisected) time.
    let alpha = r / (2.0 * l);
    let wd = (1.0 / (l * c) - alpha * alpha).sqrt();
    let t50_exact = bisect(0.0, std::f64::consts::PI / wd, |t| exact(t) - 0.5);
    let t50 = measure::cross_time(res.time(), res.voltage("out").unwrap(), 0.5, true, 0.0)
        .expect("must reach midswing");
    assert!(
        (t50 - t50_exact).abs() < 0.1e-12,
        "t50 {t50} vs exact {t50_exact}"
    );

    // First peak overshoot is exactly e^{−απ/ωd}.
    let os_exact = (-alpha * std::f64::consts::PI / wd).exp();
    let os = measure::overshoot(res.voltage("out").unwrap(), 0.0, 1.0);
    assert!(
        (os - os_exact).abs() < 2e-3,
        "overshoot {os} vs exact {os_exact}"
    );

    // The response never dips below the low rail: undershoot exactly 0.
    let us = measure::undershoot(res.time(), res.voltage("out").unwrap(), 0.0, 1.0);
    assert_eq!(us, 0.0, "series RLC step response cannot undershoot 0 V");
}

#[test]
fn critically_damped_rlc_matches_closed_form() {
    let (l, c) = (1e-9_f64, 1e-12_f64);
    let r = 2.0 * (l / c).sqrt(); // α = ω₀ exactly
    let exact = rlc_step_response(r, l, c);
    let nl = series_rlc(r, l, c);
    let duration = 1e-9;
    let res = run_adaptive(&nl, duration);

    let worst = worst_error(&res, &exact, duration, 400);
    assert!(worst < 2e-3, "worst deviation {worst} V from analytic");

    let alpha = r / (2.0 * l);
    let t50_exact = bisect(0.0, duration, |t| exact(t) - 0.5);
    let t50 = measure::cross_time(res.time(), res.voltage("out").unwrap(), 0.5, true, 0.0)
        .expect("must reach midswing");
    assert!(
        (t50 - t50_exact).abs() < 0.1e-12,
        "t50 {t50} vs exact {t50_exact} (alpha = {alpha})"
    );

    // No ringing at critical damping: overshoot within solver noise of 0.
    let os = measure::overshoot(res.voltage("out").unwrap(), 0.0, 1.0);
    assert!(os < 1e-4, "critically damped overshoot {os}");
}

#[test]
fn overdamped_rlc_matches_closed_form() {
    // α = 1e11 ≫ ω₀ ≈ 3.16e10 → two real decay rates.
    let (r, l, c) = (200.0, 1e-9, 1e-12);
    let exact = rlc_step_response(r, l, c);
    let nl = series_rlc(r, l, c);
    let duration = 2e-9;
    // The shallow midswing slope of the overdamped response (~2.6 V/ns)
    // makes the 0.1 ps crossing target sensitive to linear interpolation
    // between samples, so cap the stride harder than the defaults.
    let res = Transient::new(&nl)
        .timestep(2e-13)
        .duration(duration)
        .stepping(Stepping::Adaptive(AdaptiveOptions {
            reltol: 1e-6,
            h_max: 5e-12,
            ..Default::default()
        }))
        .run()
        .unwrap();

    let worst = worst_error(&res, &exact, duration, 400);
    assert!(worst < 2e-3, "worst deviation {worst} V from analytic");

    let t50_exact = bisect(0.0, duration, |t| exact(t) - 0.5);
    let t50 = measure::cross_time(res.time(), res.voltage("out").unwrap(), 0.5, true, 0.0)
        .expect("must reach midswing");
    assert!(
        (t50 - t50_exact).abs() < 0.1e-12,
        "t50 {t50} vs exact {t50_exact}"
    );
    assert_eq!(
        measure::overshoot(res.voltage("out").unwrap(), 0.0, 1.0),
        0.0,
        "overdamped response is monotone"
    );
}

#[test]
fn skew_between_mismatched_branches_matches_closed_form() {
    // One ideal step drives two independent series RLC branches whose
    // inductances differ: the 50 % arrival spread (skew) has an exact
    // analytic value.
    let (r, c) = (20.0, 1e-12);
    let (la, lb) = (1e-9, 2e-9);
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let a1 = nl.node("a1");
    let o1 = nl.node("o1");
    let a2 = nl.node("a2");
    let o2 = nl.node("o2");
    nl.vsource("V", inp, GROUND, Waveform::step(1.0, 0.0))
        .unwrap();
    nl.resistor("Ra", inp, a1, r).unwrap();
    nl.inductor("La", a1, o1, la).unwrap();
    nl.capacitor("Ca", o1, GROUND, c).unwrap();
    nl.resistor("Rb", inp, a2, r).unwrap();
    nl.inductor("Lb", a2, o2, lb).unwrap();
    nl.capacitor("Cb", o2, GROUND, c).unwrap();

    let duration = 2e-9;
    let res = Transient::new(&nl)
        .timestep(2e-13)
        .duration(duration)
        .stepping(Stepping::Adaptive(AdaptiveOptions {
            reltol: 1e-5,
            ..Default::default()
        }))
        .run()
        .unwrap();

    let t50 = |node: &str| {
        measure::cross_time(res.time(), res.voltage(node).unwrap(), 0.5, true, 0.0)
            .expect("must reach midswing")
    };
    let exact_t50 = |l: f64| {
        let exact = rlc_step_response(r, l, c);
        let wd = (1.0 / (l * c) - (r / (2.0 * l)).powi(2)).sqrt();
        bisect(0.0, std::f64::consts::PI / wd, |t| exact(t) - 0.5)
    };
    let skew_exact = (exact_t50(lb) - exact_t50(la)).abs();
    let skew = measure::skew(&[t50("o1"), t50("o2")]);
    assert!(
        (skew - skew_exact).abs() < 0.2e-12,
        "skew {skew} vs exact {skew_exact}"
    );
}

#[test]
fn adaptive_matches_oversampled_fixed_on_paper_ladder() {
    // The paper's Figure 2–3 shape: a driver resistor into a 10-section
    // RLC π-ladder at 1.8 V swing. The adaptive 50 % delay must land
    // within 0.1 ps of a 10× oversampled fixed-step reference while
    // accepting at least 3× fewer steps than the nominal fixed run.
    let swing = 1.8;
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, swing, 0.0, 20e-12))
        .unwrap();
    let drv = nl.node("drv");
    nl.resistor("Rdrv", inp, drv, 40.0).unwrap();
    let mut prev = drv;
    for i in 0..10 {
        let mid = nl.node(format!("m{i}"));
        let out = nl.node(format!("n{i}"));
        nl.resistor(&format!("R{i}"), prev, mid, 2.5).unwrap();
        nl.inductor(&format!("L{i}"), mid, out, 0.4e-9).unwrap();
        nl.capacitor(&format!("C{i}"), out, GROUND, 25e-15).unwrap();
        prev = out;
    }
    let duration = 1e-9;
    let h = 0.5e-12;

    let fixed = Transient::new(&nl)
        .timestep(h)
        .duration(duration)
        .run()
        .unwrap();
    let reference = Transient::new(&nl)
        .timestep(h / 10.0)
        .duration(duration)
        .run()
        .unwrap();
    let adaptive = Transient::new(&nl)
        .timestep(h)
        .duration(duration)
        .stepping(Stepping::Adaptive(AdaptiveOptions::default()))
        .run()
        .unwrap();

    let delay = |res: &rlcx::spice::TransientResult| {
        measure::delay_50(
            res.time(),
            res.voltage("in").unwrap(),
            res.voltage("n9").unwrap(),
            0.0,
            swing,
        )
        .expect("sink must reach midswing")
    };
    let d_ref = delay(&reference);
    let d_adaptive = delay(&adaptive);
    assert!(
        (d_adaptive - d_ref).abs() < 0.1e-12,
        "adaptive delay {d_adaptive} vs reference {d_ref}"
    );
    assert!(
        3 * adaptive.steps_accepted() <= fixed.steps_accepted(),
        "adaptive {} steps vs fixed {}",
        adaptive.steps_accepted(),
        fixed.steps_accepted()
    );
}
