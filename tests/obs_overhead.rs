//! Zero-overhead guarantee: with `RLCX_TRACE=off` the span API must not
//! allocate on the hot path — an inert guard is returned and dropped with
//! no heap traffic.
//!
//! This lives in its own test binary because it installs a counting
//! `#[global_allocator]` and pins the trace level for the whole process;
//! sharing a binary with other observability tests would race on both.

use rlcx::obs::{self, TraceLevel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_do_not_allocate() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    // Warm the thread-local span stack and any lazily-initialized state so
    // one-time setup costs are not charged to the measured region.
    for _ in 0..4 {
        let _s = obs::span("obs.warmup");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _outer = obs::span("obs.hot");
        let _inner = obs::span("obs.hot.nested");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "RLCX_TRACE=off spans must be allocation-free"
    );
}

/// Enabling tracing does allocate (records are stored) — a sanity check
/// that the counter itself works, so the zero above is meaningful.
#[test]
fn enabled_spans_do_allocate() {
    let _guard = level_lock();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    obs::set_trace_level(TraceLevel::Summary);
    for _ in 0..64 {
        let _s = obs::span("obs.enabled");
    }
    obs::set_trace_level(TraceLevel::Off);
    obs::take_spans();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        after > before,
        "allocation counter must observe span records"
    );
}
