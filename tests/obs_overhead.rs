//! Zero-overhead guarantee: with `RLCX_TRACE=off` the span API must not
//! allocate on the hot path — an inert guard is returned and dropped with
//! no heap traffic.
//!
//! This lives in its own test binary because it installs a counting
//! `#[global_allocator]` and pins the trace level for the whole process;
//! sharing a binary with other observability tests would race on both.

use rlcx::obs::{self, TraceLevel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_do_not_allocate() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    // Warm the thread-local span stack and any lazily-initialized state so
    // one-time setup costs are not charged to the measured region.
    for _ in 0..4 {
        let _s = obs::span("obs.warmup");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _outer = obs::span("obs.hot");
        let _inner = obs::span("obs.hot.nested");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "RLCX_TRACE=off spans must be allocation-free"
    );
}

/// The transient per-step loop must be heap-allocation-free on both
/// solver backends. Proof by invariance: the result buffers are sized
/// up front with `with_capacity` (one allocation each, regardless of
/// length), so if the step loop itself never allocates, a 500-step run
/// performs *exactly* as many allocations as a 50-step run of the same
/// fresh circuit. Any per-step `Vec`, boxing, or map insert would make
/// the counts diverge by hundreds.
#[test]
fn transient_step_loop_does_not_allocate() {
    use rlcx::spice::{Netlist, SolverEngine, Transient, Waveform, GROUND};

    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    fn ladder(sections: usize) -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 20e-12))
            .unwrap();
        let mut prev = inp;
        for i in 0..sections {
            let mid = nl.node(format!("m{i}"));
            let out = nl.node(format!("n{i}"));
            nl.resistor(&format!("R{i}"), prev, mid, 10.0).unwrap();
            nl.inductor(&format!("L{i}"), mid, out, 0.5e-9).unwrap();
            nl.capacitor(&format!("C{i}"), out, GROUND, 20e-15).unwrap();
            prev = out;
        }
        nl
    }

    fn allocs_for_run(engine: SolverEngine, steps: usize) -> u64 {
        // 30 sections → 92 unknowns, comfortably past SPARSE_CUTOVER so
        // `Sparse` exercises the real sparse path at scale.
        let nl = ladder(30);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let res = Transient::new(&nl)
            .engine(engine)
            .timestep(1e-12)
            .duration(steps as f64 * 1e-12)
            .run()
            .unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(res.time().len(), steps + 1);
        after - before
    }

    for engine in [SolverEngine::Dense, SolverEngine::Sparse] {
        // Warm one-time lazy state (metric name registration, etc.) so it
        // is not charged to either measured run.
        let _ = allocs_for_run(engine, 8);
        let short = allocs_for_run(engine, 50);
        let long = allocs_for_run(engine, 500);
        assert_eq!(
            short, long,
            "{engine:?}: allocation count must not grow with step count"
        );
    }
}

/// The adaptive engine's accepted-step hot loop (attempt, LTE estimate,
/// restamp + numeric-only refactorization on step-size changes) must be
/// heap-free too. Same invariance argument as above: a 4× longer window
/// takes ~4× the accepted steps, so any per-step allocation would make
/// the counts diverge.
#[test]
fn adaptive_step_loop_does_not_allocate() {
    use rlcx::spice::{
        AdaptiveOptions, Netlist, SolverEngine, Stepping, Transient, Waveform, GROUND,
    };

    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    fn ladder(sections: usize) -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 20e-12))
            .unwrap();
        let mut prev = inp;
        for i in 0..sections {
            let mid = nl.node(format!("m{i}"));
            let out = nl.node(format!("n{i}"));
            nl.resistor(&format!("R{i}"), prev, mid, 10.0).unwrap();
            nl.inductor(&format!("L{i}"), mid, out, 0.5e-9).unwrap();
            nl.capacitor(&format!("C{i}"), out, GROUND, 20e-15).unwrap();
            prev = out;
        }
        nl
    }

    fn allocs_for_run(engine: SolverEngine, window_ps: usize) -> u64 {
        let nl = ladder(30);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let res = Transient::new(&nl)
            .engine(engine)
            .timestep(1e-12)
            .duration(window_ps as f64 * 1e-12)
            .stepping(Stepping::Adaptive(AdaptiveOptions::default()))
            .run()
            .unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert!(res.steps_accepted() > 0);
        after - before
    }

    for engine in [SolverEngine::Dense, SolverEngine::Sparse] {
        let _ = allocs_for_run(engine, 16); // warm lazy metric state
        let short = allocs_for_run(engine, 200);
        let long = allocs_for_run(engine, 800);
        assert_eq!(
            short, long,
            "{engine:?}: adaptive allocation count must not grow with step count"
        );
    }
}

/// The sharded metric store (PR 7): after a metric's first touch interns
/// its name and lazily allocates the histogram buckets, the hot path —
/// counter adds and histogram observes — is pure atomic arithmetic.
/// Asserted both with tracing off and with tracing on (the metric path is
/// independent of the span level), plus a generous wall-clock bound per
/// operation to catch accidental lock convoys.
#[test]
fn sharded_metrics_are_allocation_free_and_bounded() {
    let _guard = level_lock();

    for level in [TraceLevel::Off, TraceLevel::Summary] {
        obs::set_trace_level(level);
        // Warm: intern the names, allocate the bucket arrays, register the
        // series channel — all one-time costs.
        for i in 0..8 {
            obs::counter_add("obs.overhead.counter", 1);
            obs::observe("obs.overhead.hist", 1.5 + i as f64);
            obs::series_push("obs.overhead.series", i as f64, 0.5);
        }

        let ops = 10_000u64;
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        for i in 0..ops {
            obs::counter_add("obs.overhead.counter", 1);
            obs::observe("obs.overhead.hist", (i % 97) as f64 + 0.5);
            obs::series_push("obs.overhead.series", i as f64, (i % 7) as f64);
        }
        let elapsed = t0.elapsed();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{level:?}: warmed counter/observe/series_push must be allocation-free"
        );
        // 3 recordings per loop iteration; 5 µs per recording is ~100×
        // headroom over the measured cost, while still catching a
        // pathological global lock on the hot path.
        let per_op = elapsed.as_secs_f64() / (3 * ops) as f64;
        assert!(
            per_op < 5e-6,
            "{level:?}: {:.2} µs per metric op exceeds the 5 µs bound",
            per_op * 1e6
        );
    }
    obs::set_trace_level(TraceLevel::Off);

    // The recorded data survived the measurement loops intact.
    assert!(obs::counter_value("obs.overhead.counter") >= 2 * 10_000);
    let p99 = obs::quantile("obs.overhead.hist", 0.99).expect("histogram populated");
    assert!(p99 > 0.0 && p99 <= 97.0, "p99 = {p99}");
}

/// Contended sharded counting: many threads hammering one counter must
/// stay allocation-free after warmup on every participating thread (each
/// thread's first touch claims its shard slot; afterwards it is a single
/// atomic add).
#[test]
fn sharded_metrics_scale_across_threads_without_allocating() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    let threads = 4;
    let per_thread = 5_000u64;
    let barrier = std::sync::Barrier::new(threads);
    let before = obs::counter_value("obs.overhead.mt");
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..threads {
            joins.push(scope.spawn(|| {
                // Per-thread warmup: shard claim + thread-ordinal init.
                obs::counter_add("obs.overhead.mt", 0);
                obs::observe("obs.overhead.mt.hist", 1.0);
                barrier.wait();
                let a0 = ALLOCATIONS.load(Ordering::Relaxed);
                for i in 0..per_thread {
                    obs::counter_add("obs.overhead.mt", 1);
                    obs::observe("obs.overhead.mt.hist", (i % 13) as f64 + 1.0);
                }
                ALLOCATIONS.load(Ordering::Relaxed) - a0
            }));
        }
        // Allocation deltas are global, so concurrent threads can observe
        // each other's heap traffic only if some thread allocates at all:
        // require the *sum* to be zero, which pins every thread to zero.
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 0, "contended metric path must be allocation-free");
    });
    assert_eq!(
        obs::counter_value("obs.overhead.mt") - before,
        threads as u64 * per_thread,
        "no sample may be lost under contention"
    );
}

/// `KernelCache::fill_block` (PR 10) reuses one thread-local scratch —
/// the pending-key position map, the SoA geometry lanes and the value
/// buffer — across calls, so a warm-cache fill is pure hash lookups into
/// the sharded store. Proof by invariance: after warmup, a short and a 3×
/// longer fill sequence must allocate identically, and both must be zero.
#[test]
fn warm_kernel_fill_block_does_not_allocate() {
    use rlcx::geom::{Axis, Bar, Point3};
    use rlcx::peec::fastop::KernelCache;

    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Off);

    let fils: Vec<Bar> = (0..24)
        .map(|i| {
            Bar::new(
                Point3::new(0.0, (i % 6) as f64 * 1.5, 10.0 + (i / 6) as f64 * 1.2),
                Axis::X,
                1000.0,
                0.9,
                0.8,
            )
            .unwrap()
        })
        .collect();
    let rows: Vec<usize> = (0..12).collect();
    let cols: Vec<usize> = (6..24).collect();
    let kernel = KernelCache::new(1000.0);
    let mut out = vec![0.0f64; rows.len() * cols.len()];

    let mut allocs_for = |fills: usize| -> u64 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..fills {
            kernel.fill_block(&fils, &rows, &cols, &mut out);
        }
        ALLOCATIONS.load(Ordering::Relaxed) - before
    };

    // Warmup: the first fill computes and caches every distinct entry and
    // grows the thread-local scratch to block size.
    let _ = allocs_for(2);
    let short = allocs_for(5);
    let long = allocs_for(15);
    assert_eq!(
        short, long,
        "warm fill_block allocation count must not grow with call count"
    );
    assert_eq!(short, 0, "warm fill_block must be allocation-free");
}

/// Enabling tracing does allocate (records are stored) — a sanity check
/// that the counter itself works, so the zero above is meaningful.
#[test]
fn enabled_spans_do_allocate() {
    let _guard = level_lock();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    obs::set_trace_level(TraceLevel::Summary);
    for _ in 0..64 {
        let _s = obs::span("obs.enabled");
    }
    obs::set_trace_level(TraceLevel::Off);
    obs::take_spans();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        after > before,
        "allocation counter must observe span records"
    );
}
