//! The parallel extraction engine and the persistent table cache, tested
//! end-to-end: serial-vs-parallel determinism, table-vs-solver accuracy,
//! cache round-trips and stage timings.

use rlcx::core::{CacheMiss, TableBuilder, TableCache};
use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Axis, Bar, Point3, Stackup};
use rlcx::obs;
use rlcx::peec::{Conductor, MeshSpec, PartialSystem};
use std::path::PathBuf;

fn bus(n: usize) -> PartialSystem {
    (0..n)
        .map(|i| {
            let bar = Bar::new(
                Point3::new(0.0, i as f64 * 4.0, 9.4),
                Axis::X,
                800.0,
                2.5,
                2.0,
            )
            .unwrap();
            Conductor::new(bar, RHO_COPPER).unwrap()
        })
        .collect()
}

fn small_builder() -> TableBuilder {
    TableBuilder::new(Stackup::hp_six_metal_copper(), 5)
        .unwrap()
        .widths(vec![1.0, 2.0, 5.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![200.0, 400.0, 800.0])
        .mesh(MeshSpec::new(2, 1))
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rlcx_test_{tag}_{}", std::process::id()))
}

/// Serial and parallel skin-effect solves agree bit-for-bit. `RLCX_THREADS`
/// is flipped inside one test so no other test observes the mutation order.
#[test]
fn impedance_solve_is_deterministic_across_thread_counts() {
    let sys = bus(6);
    let mesh = MeshSpec::new(2, 2);
    std::env::set_var("RLCX_THREADS", "1");
    let (r1, l1) = sys.rl_at(3.2e9, mesh).unwrap();
    std::env::set_var("RLCX_THREADS", "5");
    let (rn, ln) = sys.rl_at(3.2e9, mesh).unwrap();
    std::env::remove_var("RLCX_THREADS");
    for i in 0..6 {
        for j in 0..6 {
            assert_eq!(r1[(i, j)].to_bits(), rn[(i, j)].to_bits(), "R ({i},{j})");
            assert_eq!(l1[(i, j)].to_bits(), ln[(i, j)].to_bits(), "L ({i},{j})");
        }
    }
}

/// Golden: a self-inductance table lookup reproduces the direct PEEC
/// solve within 3% at off-grid points.
#[test]
fn table_lookup_matches_direct_peec_within_three_percent() {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = small_builder().build().unwrap();
    let layer = stackup.layer(5).unwrap();
    for (w, len) in [(1.5, 300.0), (3.0, 600.0)] {
        let bar = Bar::new(
            Point3::new(0.0, 0.0, layer.z_bottom()),
            Axis::X,
            len,
            w,
            layer.thickness(),
        )
        .unwrap();
        let sys: PartialSystem = [Conductor::new(bar, layer.resistivity()).unwrap()]
            .into_iter()
            .collect();
        let (_, l) = sys.rl_at(3.2e9, MeshSpec::new(2, 1)).unwrap();
        let rel = (tables.self_l.lookup(w, len) - l[(0, 0)]).abs() / l[(0, 0)];
        assert!(rel < 0.03, "w={w}, len={len}: rel err {rel}");
    }
}

/// Cache round-trip: a cold build misses and stores, a second build hits
/// and returns numerically identical tables.
#[test]
fn cache_roundtrip_is_exact() {
    let dir = scratch_dir("cache_roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    let builder = small_builder();
    let cold = builder.build_cached(&dir).unwrap();
    assert!(!cold.cache_hit, "first build must miss the cache");
    let warm = builder.build_cached(&dir).unwrap();
    assert!(warm.cache_hit, "second build must hit the cache");
    for (w, len) in [(1.0, 200.0), (2.0, 400.0), (5.0, 800.0), (1.7, 333.0)] {
        assert_eq!(
            cold.tables.self_l.lookup(w, len).to_bits(),
            warm.tables.self_l.lookup(w, len).to_bits(),
            "self_l({w},{len})"
        );
        assert_eq!(
            cold.tables.mutual_l.lookup(w, w, 1.0, len).to_bits(),
            warm.tables.mutual_l.lookup(w, w, 1.0, len).to_bits(),
            "mutual_l({w},{len})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every cache probe lands in the `cache.hit` / `cache.miss` metrics with
/// an attributable miss reason. Metrics are process-global and other tests
/// in this binary probe the cache concurrently, so all assertions are
/// deltas (`>=`) against a before-snapshot.
#[test]
fn cache_probes_record_hit_and_miss_metrics() {
    let dir = scratch_dir("cache_metrics");
    std::fs::remove_dir_all(&dir).ok();
    let builder = small_builder();
    let key = builder.cache_key();
    let cache = TableCache::new(&dir);

    let hits_before = obs::counter_value("cache.hit");
    let misses_before = obs::counter_value("cache.miss");
    let absent_before = obs::counter_value("cache.miss.absent");

    assert!(matches!(cache.lookup(&key), Err(CacheMiss::Absent)));
    let cold = builder.build_cached(&dir).unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.miss_reason, Some(CacheMiss::Absent));
    let warm = builder.build_cached(&dir).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.miss_reason, None);
    assert!(cache.lookup(&key).is_ok());

    assert!(
        obs::counter_value("cache.hit") >= hits_before + 2,
        "two hits recorded"
    );
    assert!(
        obs::counter_value("cache.miss") >= misses_before + 2,
        "two misses recorded"
    );
    assert!(
        obs::counter_value("cache.miss.absent") >= absent_before + 2,
        "misses attributed to the absent reason"
    );

    // A corrupted payload is a miss with its own reason.
    let corrupt_before = obs::counter_value("cache.miss.corrupt");
    let path = cache.path_for(&key);
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &body[..body.len() / 2]).unwrap();
    assert!(matches!(cache.lookup(&key), Err(CacheMiss::Corrupt)));
    assert!(obs::counter_value("cache.miss.corrupt") > corrupt_before);
    std::fs::remove_dir_all(&dir).ok();
}

/// A changed builder input (frequency here) must key a different cache
/// entry — the stale entry must not be served.
#[test]
fn cache_is_invalidated_by_input_changes() {
    let dir = scratch_dir("cache_invalidation");
    std::fs::remove_dir_all(&dir).ok();
    let first = small_builder().build_cached(&dir).unwrap();
    assert!(!first.cache_hit);
    let changed = small_builder().frequency(1.0e9).build_cached(&dir).unwrap();
    assert!(
        !changed.cache_hit,
        "different inputs must not hit the old entry"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Stage timings cover characterization and cache traffic, and sum to the
/// reported total.
#[test]
fn build_timings_cover_all_stages() {
    let (_, timings) = small_builder().build_timed().unwrap();
    for stage in ["self-table", "mutual-table", "loop-tables"] {
        assert!(timings.get(stage).is_some(), "missing stage {stage}");
    }
    let sum: std::time::Duration = timings.stages().iter().map(|(_, d)| *d).sum();
    assert_eq!(sum, timings.total());

    let dir = scratch_dir("cache_timing");
    std::fs::remove_dir_all(&dir).ok();
    let cold = small_builder().build_cached(&dir).unwrap();
    assert!(cold.timings.get("cache-probe").is_some());
    assert!(cold.timings.get("cache-store").is_some());
    let warm = small_builder().build_cached(&dir).unwrap();
    assert!(warm.timings.get("cache-probe").is_some());
    assert!(
        warm.timings.get("self-table").is_none(),
        "warm build must not characterize"
    );
    std::fs::remove_dir_all(&dir).ok();
}
