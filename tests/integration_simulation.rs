//! Cross-crate integration: extraction → netlist → transient simulation.
//!
//! These tests check *physics at the system level*: transmission-line wave
//! speed, characteristic impedance matching, π-ladder convergence, and the
//! RC-vs-RLC contrast that motivates the whole paper.

use rlcx::core::{ClocktreeExtractor, TableBuilder, TreeNetlistBuilder};
use rlcx::geom::{Block, SegmentTree, Stackup};
use rlcx::peec::MeshSpec;
use rlcx::spice::{measure, Transient, Waveform};

fn extractor() -> ClocktreeExtractor {
    let stackup = Stackup::hp_six_metal_copper();
    let tables = TableBuilder::new(stackup.clone(), 5)
        .unwrap()
        .widths(vec![2.0, 5.0, 10.0])
        .spacings(vec![0.5, 1.0, 2.0])
        .lengths(vec![500.0, 2000.0, 8000.0])
        .mesh(MeshSpec::new(2, 1))
        .build()
        .unwrap();
    ClocktreeExtractor::new(stackup, 5, tables).unwrap()
}

fn straight_net(len: f64) -> SegmentTree {
    let mut t = SegmentTree::new(0.0, 0.0);
    t.add_node(0, len, 0.0).unwrap();
    t
}

#[test]
fn wave_velocity_below_speed_of_light() {
    // The simulated sink arrival time of a long RLC line must equal the
    // lumped √(LC) estimate and must correspond to a propagation velocity
    // below c (and above c/10 — on-chip lines are slow-wave but not that
    // slow).
    let ex = extractor();
    let len = 8000.0;
    let tree = straight_net(len);
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let seg = ex
        .extract_segment(&cross.with_length(len).unwrap())
        .unwrap();
    let tof = seg.time_of_flight();
    let velocity = rlcx::geom::units::um_to_m(len) / tof;
    let c = 2.998e8;
    assert!(velocity < c, "v = {velocity}");
    assert!(velocity > c / 10.0, "v = {velocity}");

    // The simulation's first sink activity should appear near tof.
    let out = TreeNetlistBuilder::new(&ex)
        .sections_per_segment(12)
        .driver_resistance(15.0)
        .input(Waveform::ramp(0.0, 1.8, 0.0, 20e-12))
        .build(&tree, &cross)
        .unwrap();
    let res = Transient::new(&out.netlist)
        .timestep(0.2e-12)
        .duration(2e-9)
        .run()
        .unwrap();
    let t = res.time().to_vec();
    let v = res.voltage(&out.sinks[0]).unwrap().to_vec();
    let t10 = measure::cross_time(&t, &v, 0.18, true, 0.0).unwrap();
    assert!(
        t10 > 0.5 * tof && t10 < 2.0 * tof,
        "10% arrival {t10} vs tof {tof}"
    );
}

#[test]
fn pi_ladder_converges_with_sections() {
    // Doubling the section count should change the measured delay by less
    // and less — the ladder converges to the distributed line.
    let ex = extractor();
    let tree = straight_net(6000.0);
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let delay = |k: usize| {
        let out = TreeNetlistBuilder::new(&ex)
            .sections_per_segment(k)
            .driver_resistance(15.0)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 50e-12))
            .build(&tree, &cross)
            .unwrap();
        let res = Transient::new(&out.netlist)
            .timestep(0.2e-12)
            .duration(2e-9)
            .run()
            .unwrap();
        let t = res.time().to_vec();
        let vin = res.voltage("drv_in").unwrap().to_vec();
        let vout = res.voltage(&out.sinks[0]).unwrap().to_vec();
        measure::delay_50(&t, &vin, &vout, 0.0, 1.8).unwrap()
    };
    let d4 = delay(4);
    let d8 = delay(8);
    let d16 = delay(16);
    let step1 = (d8 - d4).abs();
    let step2 = (d16 - d8).abs();
    assert!(
        step2 < step1,
        "ladder should converge: {step1} then {step2}"
    );
    assert!(step2 / d16 < 0.05, "16 sections should be within 5%");
}

#[test]
fn rc_netlist_is_monotone_rlc_rings() {
    let ex = extractor();
    let tree = straight_net(6000.0);
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let run = |include_l: bool| {
        let out = TreeNetlistBuilder::new(&ex)
            .sections_per_segment(10)
            .include_inductance(include_l)
            .driver_resistance(15.0)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 30e-12))
            .build(&tree, &cross)
            .unwrap();
        let res = Transient::new(&out.netlist)
            .timestep(0.2e-12)
            .duration(2e-9)
            .run()
            .unwrap();
        (
            res.time().to_vec(),
            res.voltage(&out.sinks[0]).unwrap().to_vec(),
        )
    };
    let (_, v_rc) = run(false);
    let (t, v_rlc) = run(true);
    assert_eq!(measure::overshoot(&v_rc, 0.0, 1.8), 0.0);
    assert!(measure::overshoot(&v_rlc, 0.0, 1.8) > 0.05);
    // Ringing decays: the last 200 ps must sit near the rail.
    let tail_start = t.len() - (200e-12 / 0.2e-12) as usize;
    for &v in &v_rlc[tail_start..] {
        assert!((v - 1.8).abs() < 0.05, "unsettled tail: {v}");
    }
}

#[test]
fn driver_strength_trades_delay_for_ringing() {
    let ex = extractor();
    let tree = straight_net(6000.0);
    let cross = Block::coplanar_waveguide(1.0, 10.0, 5.0, 1.0).unwrap();
    let run = |rdrv: f64| {
        let out = TreeNetlistBuilder::new(&ex)
            .sections_per_segment(8)
            .driver_resistance(rdrv)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 30e-12))
            .build(&tree, &cross)
            .unwrap();
        let res = Transient::new(&out.netlist)
            .timestep(0.3e-12)
            .duration(3e-9)
            .run()
            .unwrap();
        let t = res.time().to_vec();
        let vin = res.voltage("drv_in").unwrap().to_vec();
        let vout = res.voltage(&out.sinks[0]).unwrap().to_vec();
        (
            measure::delay_50(&t, &vin, &vout, 0.0, 1.8).unwrap(),
            measure::overshoot(&vout, 0.0, 1.8),
        )
    };
    let (d_strong, os_strong) = run(5.0);
    let (d_weak, os_weak) = run(120.0);
    assert!(d_strong < d_weak, "stronger driver is faster");
    assert!(
        os_strong > os_weak,
        "stronger driver rings more: {os_strong} vs {os_weak}"
    );
}

#[test]
fn branched_tree_sinks_see_consistent_delays() {
    // A symmetric Y: both sinks must match; an asymmetric Y must order
    // delays by branch length.
    let ex = extractor();
    let cross = Block::coplanar_waveguide(1.0, 5.0, 5.0, 1.0).unwrap();
    let run = |tree: &SegmentTree| {
        let out = TreeNetlistBuilder::new(&ex)
            .driver_resistance(20.0)
            .input(Waveform::ramp(0.0, 1.8, 0.0, 50e-12))
            .build(tree, &cross)
            .unwrap();
        let res = Transient::new(&out.netlist)
            .timestep(0.5e-12)
            .duration(3e-9)
            .run()
            .unwrap();
        let t = res.time().to_vec();
        let vin = res.voltage("drv_in").unwrap().to_vec();
        out.sinks
            .iter()
            .map(|s| {
                let vout = res.voltage(s).unwrap().to_vec();
                measure::delay_50(&t, &vin, &vout, 0.0, 1.8).unwrap()
            })
            .collect::<Vec<_>>()
    };
    let mut sym = SegmentTree::new(0.0, 0.0);
    let b = sym.add_node(0, 1000.0, 0.0).unwrap();
    sym.add_node(b, 1000.0, 1500.0).unwrap();
    sym.add_node(b, 1000.0, -1500.0).unwrap();
    let d = run(&sym);
    assert!((d[0] - d[1]).abs() < 1e-14, "symmetric Y must be skewless");

    let mut asym = SegmentTree::new(0.0, 0.0);
    let b = asym.add_node(0, 1000.0, 0.0).unwrap();
    asym.add_node(b, 1000.0, 500.0).unwrap();
    asym.add_node(b, 1000.0, -3000.0).unwrap();
    let d = run(&asym);
    assert!(d[1] > d[0], "longer branch must be slower: {d:?}");
}

#[test]
fn spice_export_roundtrip_contains_extracted_values() {
    let ex = extractor();
    let tree = straight_net(2000.0);
    let cross = Block::coplanar_waveguide(1.0, 5.0, 5.0, 1.0).unwrap();
    let out = TreeNetlistBuilder::new(&ex)
        .sections_per_segment(1)
        .build(&tree, &cross)
        .unwrap();
    let deck = rlcx::spice::writer::to_spice(&out.netlist, "roundtrip");
    let seg = ex
        .extract_segment(&cross.with_length(2000.0).unwrap())
        .unwrap();
    // One section: the full loop L appears on a single L card.
    assert!(deck.contains(&format!("{:.6e}", seg.l)), "deck:\n{deck}");
    assert!(deck.contains(&format!("{:.6e}", seg.r)));
    assert!(deck.contains("Vdrv"));
}

#[test]
fn solver_engines_agree_on_extracted_netlist() {
    use rlcx::spice::{
        ac::{Ac, Sweep},
        SolverEngine, SPARSE_CUTOVER,
    };
    // End-to-end backend check: an extracted RLC ladder big enough that
    // `Auto` routes it to the sparse engine, driven through both the
    // transient and AC analyses on both backends.
    let ex = extractor();
    let tree = straight_net(4000.0);
    let cross = Block::coplanar_waveguide(1.0, 5.0, 5.0, 1.0).unwrap();
    let out = TreeNetlistBuilder::new(&ex)
        .sections_per_segment(24)
        .driver_resistance(25.0)
        .input(Waveform::ramp(0.0, 1.0, 0.0, 20e-12))
        .build(&tree, &cross)
        .unwrap();
    assert!(
        out.netlist.node_count() > SPARSE_CUTOVER,
        "test circuit must exceed the sparse cutover"
    );

    let trans = |engine: SolverEngine| {
        Transient::new(&out.netlist)
            .engine(engine)
            .timestep(0.5e-12)
            .duration(1e-9)
            .run()
            .unwrap()
    };
    let dense = trans(SolverEngine::Dense);
    let sparse = trans(SolverEngine::Sparse);
    let sink = &out.sinks[0];
    for (d, s) in dense
        .voltage(sink)
        .unwrap()
        .iter()
        .zip(sparse.voltage(sink).unwrap())
    {
        assert!((d - s).abs() / d.abs().max(1.0) < 1e-9, "{d} vs {s}");
    }

    let sweep = Sweep::log(1e8, 5e10, 15);
    let ac_dense = Ac::new(&out.netlist)
        .sweep(sweep)
        .engine(SolverEngine::Dense)
        .run()
        .unwrap();
    let ac_sparse = Ac::new(&out.netlist)
        .sweep(sweep)
        .engine(SolverEngine::Sparse)
        .run()
        .unwrap();
    for (d, s) in ac_dense
        .voltage(sink)
        .unwrap()
        .iter()
        .zip(ac_sparse.voltage(sink).unwrap())
    {
        assert!((*d - *s).abs() / d.abs().max(1.0) < 1e-9, "{d:?} vs {s:?}");
    }
}
