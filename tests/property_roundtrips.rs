//! Property-based tests over the numerical core and the physics kernels.

use proptest::prelude::*;
use rlcx::geom::{Axis, Bar, Point3};
use rlcx::numeric::lu::LuDecomposition;
use rlcx::numeric::spline::CubicSpline;
use rlcx::numeric::{Complex, Matrix};
use rlcx::peec::partial::{mutual_partial, self_partial, self_partial_ruehli};
use rlcx::spice::measure;
use rlcx::spice::Waveform;

proptest! {
    /// LU solve round-trips `A·x = b` for random diagonally-dominant
    /// systems (dominance guarantees non-singularity).
    #[test]
    fn lu_solve_roundtrip(
        vals in proptest::collection::vec(-10.0..10.0f64, 16),
        x_true in proptest::collection::vec(-5.0..5.0f64, 4),
    ) {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            let mut row_sum = 0.0;
            for j in 0..4 {
                a[(i, j)] = vals[i * 4 + j];
                if i != j {
                    row_sum += vals[i * 4 + j].abs();
                }
            }
            a[(i, i)] = row_sum + 1.0; // diagonal dominance
        }
        let b = a.mul_vec(&x_true).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    /// Natural cubic splines interpolate their knots exactly and stay
    /// within the data's convex hull for monotone convex data.
    #[test]
    fn spline_hits_knots(
        ys in proptest::collection::vec(-100.0..100.0f64, 4..12),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let s = CubicSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    /// Complex arithmetic: multiplication/division round-trip.
    #[test]
    fn complex_div_roundtrip(re1 in -1e3..1e3f64, im1 in -1e3..1e3f64,
                             re2 in 0.1..1e3f64, im2 in -1e3..1e3f64) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        let c = a / b * b;
        prop_assert!((c - a).abs() < 1e-9 * (1.0 + a.abs()));
    }

    /// Self partial inductance is positive, increases with length and
    /// decreases with width (thicker conductors store less external flux).
    #[test]
    fn self_partial_monotonicity(
        len in 50.0..5000.0f64,
        w in 0.5..20.0f64,
        t in 0.5..3.0f64,
    ) {
        let l = self_partial_ruehli(len, w, t);
        prop_assert!(l > 0.0);
        prop_assert!(self_partial_ruehli(len * 1.5, w, t) > l);
        prop_assert!(self_partial_ruehli(len, w * 1.5, t) < l);
    }

    /// Self partial L is super-linear in length for any on-chip geometry.
    #[test]
    fn self_partial_superlinear(
        len in 100.0..4000.0f64,
        w in 0.5..20.0f64,
    ) {
        let l1 = self_partial_ruehli(len, w, 2.0);
        let l2 = self_partial_ruehli(2.0 * len, w, 2.0);
        prop_assert!(l2 > 2.0 * l1);
        prop_assert!(l2 < 3.0 * l1);
    }

    /// Mutual partial inductance between parallel bars: symmetric, positive
    /// for aligned spans, bounded by the geometric mean of the self terms
    /// (passivity).
    #[test]
    fn mutual_partial_passivity(
        len in 100.0..3000.0f64,
        w1 in 1.0..15.0f64,
        w2 in 1.0..15.0f64,
        s in 0.5..50.0f64,
    ) {
        let a = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, len, w1, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, w1 + s, 9.4), Axis::X, len, w2, 2.0).unwrap();
        let m = mutual_partial(&a, &b);
        let m_rev = mutual_partial(&b, &a);
        prop_assert!(m > 0.0);
        prop_assert!((m - m_rev).abs() < 1e-12 * m);
        let la = self_partial(&a);
        let lb = self_partial(&b);
        prop_assert!(m * m < la * lb, "k = {}", m / (la * lb).sqrt());
    }

    /// Waveform eval never escapes the declared levels.
    #[test]
    fn waveform_bounded_by_levels(
        v0 in -2.0..2.0f64,
        v1 in -2.0..2.0f64,
        t in 0.0..20e-9f64,
    ) {
        let w = Waveform::pulse(v0, v1, 1e-9, 0.5e-9, 0.5e-9, 2e-9, 6e-9);
        let (lo, hi) = w.levels();
        let v = w.eval(t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// `cross_time` on a strictly rising ramp inverts the ramp exactly.
    #[test]
    fn cross_time_inverts_ramp(th in 0.05..0.95f64) {
        let time: Vec<f64> = (0..=100).map(|i| i as f64 * 1e-11).collect();
        let v: Vec<f64> = time.iter().map(|t| t / 1e-9).collect();
        let tc = measure::cross_time(&time, &v, th, true, 0.0).unwrap();
        prop_assert!((tc - th * 1e-9).abs() < 1e-15);
    }

    /// Skew is non-negative, zero only for (near-)equal delays, invariant
    /// under common shifts.
    #[test]
    fn skew_properties(
        delays in proptest::collection::vec(0.0..1e-9f64, 1..16),
        shift in -1e-9..1e-9f64,
    ) {
        let s = measure::skew(&delays);
        prop_assert!(s >= 0.0);
        let shifted: Vec<f64> = delays.iter().map(|d| d + shift).collect();
        prop_assert!((measure::skew(&shifted) - s).abs() < 1e-18);
    }

    /// Matrix transpose of a product equals reversed product of transposes.
    #[test]
    fn transpose_product_identity(
        vals_a in proptest::collection::vec(-3.0..3.0f64, 6),
        vals_b in proptest::collection::vec(-3.0..3.0f64, 6),
    ) {
        let a = Matrix::from_fn(2, 3, |i, j| vals_a[i * 3 + j]);
        let b = Matrix::from_fn(3, 2, |i, j| vals_b[i * 2 + j]);
        let lhs = a.mul(&b).unwrap().transpose();
        let rhs = b.transpose().mul(&a.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-10);
            }
        }
    }
    /// A passive RC divider's AC magnitude never exceeds the source, at any
    /// frequency, for any element values.
    #[test]
    fn ac_passivity_of_rc_divider(
        r in 1.0..1e5f64,
        c in 1e-15..1e-9f64,
        f in 1e3..1e11f64,
    ) {
        use rlcx::spice::{ac::{Ac, Sweep}, Netlist, GROUND};
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V", inp, GROUND, Waveform::Dc(1.0)).unwrap();
        nl.resistor("R", inp, out, r).unwrap();
        nl.capacitor("C", out, GROUND, c).unwrap();
        let res = Ac::new(&nl).sweep(Sweep::log(f, f * 1.001, 2)).run().unwrap();
        let mag = res.magnitude("out").unwrap()[0];
        prop_assert!(mag <= 1.0 + 1e-9, "gain {mag} at f={f}");
        prop_assert!(mag >= 0.0);
    }

    /// A driven RC network settles to the DC source value regardless of
    /// element values (final-value theorem).
    #[test]
    fn transient_final_value(
        r in 10.0..1e4f64,
        c in 1e-15..2e-12f64,
    ) {
        use rlcx::spice::{Netlist, Transient, GROUND};
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 1e-12)).unwrap();
        nl.resistor("R", inp, out, r).unwrap();
        nl.capacitor("C", out, GROUND, c).unwrap();
        let tau = r * c;
        let res = Transient::new(&nl)
            .timestep((tau / 50.0).max(1e-14))
            .duration(12.0 * tau + 1e-11)
            .run()
            .unwrap();
        let v_end = *res.voltage("out").unwrap().last().unwrap();
        prop_assert!((v_end - 1.0).abs() < 1e-3, "v_end = {v_end}");
    }

    /// Loop reduction of a random passive 2-conductor system gives the
    /// textbook Ls + Lg − 2M, always positive for |M| < √(Ls·Lg).
    #[test]
    fn loop_reduction_two_conductor(
        ls in 0.1e-9..5e-9f64,
        lg in 0.1e-9..5e-9f64,
        k in -0.95..0.95f64,
        rs in 0.01..10.0f64,
        rg in 0.01..10.0f64,
    ) {
        use rlcx::numeric::{CMatrix, Complex};
        use rlcx::peec::loop_l::{loop_impedance, loop_rl};
        let m = k * (ls * lg).sqrt();
        let omega = 2.0e10;
        let mut z = CMatrix::zeros(2, 2);
        z[(0, 0)] = Complex::new(rs, omega * ls);
        z[(1, 1)] = Complex::new(rg, omega * lg);
        z[(0, 1)] = Complex::from_imag(omega * m);
        z[(1, 0)] = z[(0, 1)];
        let zl = loop_impedance(&z, &[0], &[1]).unwrap();
        let (r_loop, l_loop) = loop_rl(&zl, omega);
        prop_assert!((l_loop[(0, 0)] - (ls + lg - 2.0 * m)).abs() < 1e-15 + 1e-9 * ls);
        prop_assert!(l_loop[(0, 0)] > 0.0);
        prop_assert!((r_loop[(0, 0)] - (rs + rg)).abs() < 1e-9);
    }
}

/// Non-proptest sanity: the two self-partial formulations agree over a
/// systematic sweep (complementing the random sweeps above).
#[test]
fn self_partial_formulations_agree_over_sweep() {
    for len in [200.0, 500.0, 1000.0, 2000.0, 5000.0] {
        for w in [1.0, 2.0, 5.0, 10.0, 20.0] {
            let bar = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, len, w, 2.0).unwrap();
            let gmd = self_partial(&bar);
            let ruehli = self_partial_ruehli(len, w, 2.0);
            let rel = (gmd - ruehli).abs() / ruehli;
            assert!(rel < 0.03, "len={len}, w={w}: {rel}");
        }
    }
}
