//! Property-based tests over the numerical core and the physics kernels.
//!
//! Each property is checked over a seeded random sweep driven by the
//! in-repo [`SplitMix64`] generator, so the suite is deterministic and
//! needs no external crates (the workspace must build offline).

use rlcx::geom::{Axis, Bar, Point3};
use rlcx::numeric::lu::LuDecomposition;
use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::numeric::spline::CubicSpline;
use rlcx::numeric::{Complex, Matrix};
use rlcx::peec::partial::{mutual_partial, self_partial, self_partial_ruehli};
use rlcx::spice::measure;
use rlcx::spice::Waveform;

const CASES: usize = 64;

/// LU solve round-trips `A·x = b` for random diagonally-dominant systems
/// (dominance guarantees non-singularity).
#[test]
fn lu_solve_roundtrip() {
    let mut rng = SplitMix64::new(0x1001);
    for _ in 0..CASES {
        let vals: Vec<f64> = (0..16).map(|_| rng.uniform(-10.0, 10.0)).collect();
        let x_true: Vec<f64> = (0..4).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            let mut row_sum = 0.0;
            for j in 0..4 {
                a[(i, j)] = vals[i * 4 + j];
                if i != j {
                    row_sum += vals[i * 4 + j].abs();
                }
            }
            a[(i, i)] = row_sum + 1.0; // diagonal dominance
        }
        let b = a.mul_vec(&x_true).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }
}

/// Natural cubic splines interpolate their knots exactly.
#[test]
fn spline_hits_knots() {
    let mut rng = SplitMix64::new(0x1002);
    for _ in 0..CASES {
        let n = 4 + (rng.next_u64() % 8) as usize;
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let s = CubicSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((s.eval(*x) - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}

/// Complex arithmetic: multiplication/division round-trip.
#[test]
fn complex_div_roundtrip() {
    let mut rng = SplitMix64::new(0x1003);
    for _ in 0..CASES {
        let a = Complex::new(rng.uniform(-1e3, 1e3), rng.uniform(-1e3, 1e3));
        let b = Complex::new(rng.uniform(0.1, 1e3), rng.uniform(-1e3, 1e3));
        let c = a / b * b;
        assert!((c - a).abs() < 1e-9 * (1.0 + a.abs()));
    }
}

/// Self partial inductance is positive, increases with length and
/// decreases with width (thicker conductors store less external flux).
#[test]
fn self_partial_monotonicity() {
    let mut rng = SplitMix64::new(0x1004);
    for _ in 0..CASES {
        let len = rng.uniform(50.0, 5000.0);
        let w = rng.uniform(0.5, 20.0);
        let t = rng.uniform(0.5, 3.0);
        let l = self_partial_ruehli(len, w, t);
        assert!(l > 0.0);
        assert!(self_partial_ruehli(len * 1.5, w, t) > l);
        assert!(self_partial_ruehli(len, w * 1.5, t) < l);
    }
}

/// Self partial L is super-linear in length for any on-chip geometry.
#[test]
fn self_partial_superlinear() {
    let mut rng = SplitMix64::new(0x1005);
    for _ in 0..CASES {
        let len = rng.uniform(100.0, 4000.0);
        let w = rng.uniform(0.5, 20.0);
        let l1 = self_partial_ruehli(len, w, 2.0);
        let l2 = self_partial_ruehli(2.0 * len, w, 2.0);
        assert!(l2 > 2.0 * l1);
        assert!(l2 < 3.0 * l1);
    }
}

/// Mutual partial inductance between parallel bars: symmetric, positive
/// for aligned spans, bounded by the geometric mean of the self terms
/// (passivity).
#[test]
fn mutual_partial_passivity() {
    let mut rng = SplitMix64::new(0x1006);
    for _ in 0..CASES {
        let len = rng.uniform(100.0, 3000.0);
        let w1 = rng.uniform(1.0, 15.0);
        let w2 = rng.uniform(1.0, 15.0);
        let s = rng.uniform(0.5, 50.0);
        let a = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, len, w1, 2.0).unwrap();
        let b = Bar::new(Point3::new(0.0, w1 + s, 9.4), Axis::X, len, w2, 2.0).unwrap();
        let m = mutual_partial(&a, &b);
        let m_rev = mutual_partial(&b, &a);
        assert!(m > 0.0);
        assert!((m - m_rev).abs() < 1e-12 * m);
        let la = self_partial(&a);
        let lb = self_partial(&b);
        assert!(m * m < la * lb, "k = {}", m / (la * lb).sqrt());
    }
}

/// Waveform eval never escapes the declared levels.
#[test]
fn waveform_bounded_by_levels() {
    let mut rng = SplitMix64::new(0x1007);
    let w = Waveform::pulse(-1.3, 1.7, 1e-9, 0.5e-9, 0.5e-9, 2e-9, 6e-9);
    let (lo, hi) = w.levels();
    for _ in 0..4 * CASES {
        let t = rng.uniform(0.0, 20e-9);
        let v = w.eval(t);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

/// `cross_time` on a strictly rising ramp inverts the ramp exactly.
#[test]
fn cross_time_inverts_ramp() {
    let mut rng = SplitMix64::new(0x1008);
    let time: Vec<f64> = (0..=100).map(|i| i as f64 * 1e-11).collect();
    let v: Vec<f64> = time.iter().map(|t| t / 1e-9).collect();
    for _ in 0..CASES {
        let th = rng.uniform(0.05, 0.95);
        let tc = measure::cross_time(&time, &v, th, true, 0.0).unwrap();
        assert!((tc - th * 1e-9).abs() < 1e-15);
    }
}

/// Skew is non-negative, zero only for (near-)equal delays, invariant
/// under common shifts.
#[test]
fn skew_properties() {
    let mut rng = SplitMix64::new(0x1009);
    for _ in 0..CASES {
        let n = 1 + (rng.next_u64() % 15) as usize;
        let delays: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1e-9)).collect();
        let shift = rng.uniform(-1e-9, 1e-9);
        let s = measure::skew(&delays);
        assert!(s >= 0.0);
        let shifted: Vec<f64> = delays.iter().map(|d| d + shift).collect();
        assert!((measure::skew(&shifted) - s).abs() < 1e-18);
    }
}

/// Matrix transpose of a product equals reversed product of transposes.
#[test]
fn transpose_product_identity() {
    let mut rng = SplitMix64::new(0x100a);
    for _ in 0..CASES {
        let vals_a: Vec<f64> = (0..6).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let vals_b: Vec<f64> = (0..6).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let a = Matrix::from_fn(2, 3, |i, j| vals_a[i * 3 + j]);
        let b = Matrix::from_fn(3, 2, |i, j| vals_b[i * 2 + j]);
        let lhs = a.mul(&b).unwrap().transpose();
        let rhs = b.transpose().mul(&a.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-10);
            }
        }
    }
}

/// A passive RC divider's AC magnitude never exceeds the source, at any
/// frequency, for any element values.
#[test]
fn ac_passivity_of_rc_divider() {
    use rlcx::spice::{
        ac::{Ac, Sweep},
        Netlist, GROUND,
    };
    let mut rng = SplitMix64::new(0x100b);
    for _ in 0..32 {
        let r = rng.uniform(1.0, 1e5);
        let c = rng.uniform(1e-15, 1e-9);
        let f = rng.uniform(1e3, 1e11);
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        // A swinging source: plain DC is a bias under the small-signal
        // convention and would make the sweep (correctly) read all zeros.
        nl.vsource("V", inp, GROUND, Waveform::step(1.0, 1e-12))
            .unwrap();
        nl.resistor("R", inp, out, r).unwrap();
        nl.capacitor("C", out, GROUND, c).unwrap();
        let res = Ac::new(&nl)
            .sweep(Sweep::log(f, f * 1.001, 2))
            .run()
            .unwrap();
        let mag = res.magnitude("out").unwrap()[0];
        assert!(mag <= 1.0 + 1e-9, "gain {mag} at f={f}");
        assert!(mag >= 0.0);
    }
}

/// A driven RC network settles to the DC source value regardless of
/// element values (final-value theorem).
#[test]
fn transient_final_value() {
    use rlcx::spice::{Netlist, Transient, GROUND};
    let mut rng = SplitMix64::new(0x100c);
    for _ in 0..16 {
        let r = rng.uniform(10.0, 1e4);
        let c = rng.uniform(1e-15, 2e-12);
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 1e-12))
            .unwrap();
        nl.resistor("R", inp, out, r).unwrap();
        nl.capacitor("C", out, GROUND, c).unwrap();
        let tau = r * c;
        let res = Transient::new(&nl)
            .timestep((tau / 50.0).max(1e-14))
            .duration(12.0 * tau + 1e-11)
            .run()
            .unwrap();
        let v_end = *res.voltage("out").unwrap().last().unwrap();
        assert!((v_end - 1.0).abs() < 1e-3, "v_end = {v_end}");
    }
}

/// Loop reduction of a random passive 2-conductor system gives the
/// textbook Ls + Lg − 2M, always positive for |M| < √(Ls·Lg).
#[test]
fn loop_reduction_two_conductor() {
    use rlcx::numeric::CMatrix;
    use rlcx::peec::loop_l::{loop_impedance, loop_rl};
    let mut rng = SplitMix64::new(0x100d);
    for _ in 0..CASES {
        let ls = rng.uniform(0.1e-9, 5e-9);
        let lg = rng.uniform(0.1e-9, 5e-9);
        let k = rng.uniform(-0.95, 0.95);
        let rs = rng.uniform(0.01, 10.0);
        let rg = rng.uniform(0.01, 10.0);
        let m = k * (ls * lg).sqrt();
        let omega = 2.0e10;
        let mut z = CMatrix::zeros(2, 2);
        z[(0, 0)] = Complex::new(rs, omega * ls);
        z[(1, 1)] = Complex::new(rg, omega * lg);
        z[(0, 1)] = Complex::from_imag(omega * m);
        z[(1, 0)] = z[(0, 1)];
        let zl = loop_impedance(&z, &[0], &[1]).unwrap();
        let (r_loop, l_loop) = loop_rl(&zl, omega);
        assert!((l_loop[(0, 0)] - (ls + lg - 2.0 * m)).abs() < 1e-15 + 1e-9 * ls);
        assert!(l_loop[(0, 0)] > 0.0);
        assert!((r_loop[(0, 0)] - (rs + rg)).abs() < 1e-9);
    }
}

/// Systematic (non-random) sanity: the two self-partial formulations agree
/// over a sweep, complementing the random sweeps above.
#[test]
fn self_partial_formulations_agree_over_sweep() {
    for len in [200.0, 500.0, 1000.0, 2000.0, 5000.0] {
        for w in [1.0, 2.0, 5.0, 10.0, 20.0] {
            let bar = Bar::new(Point3::new(0.0, 0.0, 9.4), Axis::X, len, w, 2.0).unwrap();
            let gmd = self_partial(&bar);
            let ruehli = self_partial_ruehli(len, w, 2.0);
            let rel = (gmd - ruehli).abs() / ruehli;
            assert!(rel < 0.03, "len={len}, w={w}: {rel}");
        }
    }
}
