//! Seeded property suite for the batched partial-inductance kernel:
//! `mutual_partial_batch` must be **bit-identical** to the scalar
//! `mutual_partial_relative` over every GMD branch — near (4-D quadrature),
//! far (center-distance), collinear (averaged self-GMD) — including
//! displacements sitting exactly on the 4× far-field threshold, the PR 5
//! regression class where the near/far branch must be inherited from the
//! caller rather than re-derived.

use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::peec::partial::{mutual_partial_batch, mutual_partial_relative, PairGeom};

/// Scalar reference for a batch of pairs.
fn scalar_reference(length_um: f64, pairs: &[PairGeom]) -> Vec<f64> {
    pairs
        .iter()
        .map(|g| mutual_partial_relative(length_um, g.w1, g.t1, g.w2, g.t2, g.dt, g.dz, g.far))
        .collect()
}

fn assert_bit_identical(length_um: f64, pairs: &[PairGeom], label: &str) {
    let expect = scalar_reference(length_um, pairs);
    let mut got = vec![0.0f64; pairs.len()];
    mutual_partial_batch(length_um, pairs, &mut got);
    for (p, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{label}: pair {p} ({:?}): batch {g:e} vs scalar {e:e}",
            pairs[p]
        );
    }
}

/// A random pair geometry; `mode` selects the displacement regime.
fn random_pair(rng: &mut SplitMix64, mode: u64) -> PairGeom {
    let w1 = rng.uniform(0.5, 12.0);
    let t1 = rng.uniform(0.5, 4.0);
    let w2 = rng.uniform(0.5, 12.0);
    let t2 = rng.uniform(0.5, 4.0);
    let scale = w1.max(t1).max(w2).max(t2);
    let (dt, dz) = match mode % 3 {
        // Near: small center offset, well inside the 4× threshold.
        0 => (rng.uniform(0.3, 1.5) * scale, rng.uniform(0.1, 0.8) * scale),
        // Far: comfortably beyond it.
        1 => (
            rng.uniform(5.0, 40.0) * scale,
            rng.uniform(0.0, 10.0) * scale,
        ),
        // Borderline: center distance right around 4× scale.
        _ => (rng.uniform(3.9, 4.1) * scale, 0.0),
    };
    // The near/far branch is the caller's to decide (from the absolute
    // test on real bars); reproduce the relative-coordinate policy here.
    let cx = dt + 0.5 * (w2 - w1);
    let cz = dz + 0.5 * (t2 - t1);
    let far = cx.hypot(cz) > 4.0 * scale;
    PairGeom {
        w1,
        t1,
        w2,
        t2,
        dt,
        dz,
        far,
    }
}

#[test]
fn batch_is_bit_identical_to_scalar_across_branches() {
    let mut rng = SplitMix64::new(0xBA7C4);
    for round in 0..8 {
        let length_um = rng.uniform(200.0, 3000.0);
        // 37 pairs: not a multiple of the lane width, so the last SoA
        // block runs partially filled.
        let pairs: Vec<PairGeom> = (0..37).map(|k| random_pair(&mut rng, k)).collect();
        assert_bit_identical(length_um, &pairs, &format!("round {round}"));
    }
}

#[test]
fn batch_handles_collinear_pairs() {
    // Center distance exactly zero → the averaged self-GMD branch. Mix
    // collinear pairs with near ones so both paths share one batch.
    let mut rng = SplitMix64::new(0xC0111);
    let mut pairs = Vec::new();
    for k in 0..24 {
        if k % 3 == 0 {
            let w1 = rng.uniform(0.5, 8.0);
            let t1 = rng.uniform(0.5, 3.0);
            let w2 = rng.uniform(0.5, 8.0);
            let t2 = rng.uniform(0.5, 3.0);
            // dt, dz chosen so the center offset cancels exactly.
            pairs.push(PairGeom {
                w1,
                t1,
                w2,
                t2,
                dt: -(0.5 * (w2 - w1)),
                dz: -(0.5 * (t2 - t1)),
                far: false,
            });
        } else {
            pairs.push(random_pair(&mut rng, k));
        }
    }
    assert_bit_identical(1000.0, &pairs, "collinear mix");
}

#[test]
fn batch_respects_branch_flag_exactly_on_threshold() {
    // Displacements exactly at center == 4×scale, where the absolute and
    // relative classifications can disagree: the batch must honor the
    // caller's `far` flag bit-for-bit in *both* states, like the scalar
    // path does (PR 5 regression class).
    let mut pairs = Vec::new();
    for (w, t) in [(1.0f64, 1.0f64), (2.0, 0.5), (0.9, 0.9), (4.0, 2.0)] {
        let scale: f64 = w.max(t);
        for far in [false, true] {
            // Equal cross-sections → center = (dt, dz) exactly.
            pairs.push(PairGeom {
                w1: w,
                t1: t,
                w2: w,
                t2: t,
                dt: 4.0 * scale,
                dz: 0.0,
                far,
            });
            pairs.push(PairGeom {
                w1: w,
                t1: t,
                w2: w,
                t2: t,
                dt: 0.0,
                dz: 4.0 * scale,
                far,
            });
        }
    }
    // Sanity: the flag genuinely changes the answer at the threshold
    // (near quadrature vs far center-distance differ by ~1e-3 relative),
    // so honoring it is load-bearing.
    let near_v = mutual_partial_relative(1000.0, 1.0, 1.0, 1.0, 1.0, 4.0, 0.0, false);
    let far_v = mutual_partial_relative(1000.0, 1.0, 1.0, 1.0, 1.0, 4.0, 0.0, true);
    assert!(
        (near_v - far_v).abs() > 0.0,
        "branch flag should matter at the threshold"
    );
    assert_bit_identical(1000.0, &pairs, "threshold");
}

#[test]
fn batch_values_do_not_depend_on_lane_position() {
    // The same geometry must produce the same bits no matter where in the
    // batch (and at which lane offset) it lands: prepend a pad pair to
    // shift every lane by one and compare against the unshifted batch.
    let mut rng = SplitMix64::new(0x1A4E5);
    let pairs: Vec<PairGeom> = (0..19).map(|k| random_pair(&mut rng, k)).collect();
    let mut base = vec![0.0f64; pairs.len()];
    mutual_partial_batch(777.0, &pairs, &mut base);

    let mut shifted_pairs = vec![random_pair(&mut rng, 0)];
    shifted_pairs.extend_from_slice(&pairs);
    let mut shifted = vec![0.0f64; shifted_pairs.len()];
    mutual_partial_batch(777.0, &shifted_pairs, &mut shifted);
    for (p, (b, s)) in base.iter().zip(&shifted[1..]).enumerate() {
        assert_eq!(b.to_bits(), s.to_bits(), "pair {p} moved lanes");
    }
}

#[test]
#[should_panic(expected = "output length")]
fn batch_rejects_mismatched_output() {
    let pairs = [PairGeom {
        w1: 1.0,
        t1: 1.0,
        w2: 1.0,
        t2: 1.0,
        dt: 3.0,
        dz: 0.0,
        far: false,
    }];
    let mut out = vec![0.0f64; 2];
    mutual_partial_batch(1000.0, &pairs, &mut out);
}
