//! The observability layer tested through the public facade: span nesting
//! across real extraction work, metric accumulation under multi-threaded
//! characterization, and run-report JSON round-trips.
//!
//! Trace level and metrics are process-global; tests that flip the level
//! serialize through [`level_lock`], and all metric assertions are deltas
//! against a before-snapshot so concurrently running tests cannot break
//! them.

use rlcx::core::TableBuilder;
use rlcx::geom::Stackup;
use rlcx::obs::{self, RunReport, TraceLevel};
use rlcx::peec::MeshSpec;
use std::sync::{Mutex, MutexGuard};

fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_builder() -> TableBuilder {
    TableBuilder::new(Stackup::hp_six_metal_copper(), 5)
        .unwrap()
        .widths(vec![2.0, 5.0])
        .spacings(vec![0.5, 1.0])
        .lengths(vec![200.0, 400.0])
        .mesh(MeshSpec::new(2, 1))
}

/// A table build under `Summary` records the characterization span tree
/// with correct nesting: `table.build` as the root, the per-stage spans
/// below it, and the PEEC solve spans below those (on worker threads the
/// solver spans are thread-local roots, so only depth-0 paths are
/// guaranteed for them).
#[test]
fn table_build_records_nested_spans() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    small_builder().build().unwrap();
    obs::set_trace_level(TraceLevel::Off);
    let spans = obs::take_spans();

    let build = spans
        .iter()
        .find(|s| s.path == "table.build")
        .expect("root span recorded");
    assert_eq!(build.depth, 0);
    for stage in ["table.self", "table.mutual", "table.loop"] {
        let path = format!("table.build/{stage}");
        let s = spans
            .iter()
            .find(|s| s.path == path)
            .unwrap_or_else(|| panic!("stage span {path} recorded"));
        assert_eq!(s.depth, 1);
        assert!(s.duration <= build.duration, "{path} within the root span");
    }
    // The PEEC solves run inside the stages (possibly on worker threads).
    assert!(
        spans.iter().any(|s| s.path.ends_with("peec.solve")),
        "solver spans recorded"
    );
    // Span ordering: completion order puts children before their parent.
    let build_pos = spans.iter().position(|s| s.path == "table.build").unwrap();
    let self_pos = spans
        .iter()
        .position(|s| s.path == "table.build/table.self")
        .unwrap();
    assert!(self_pos < build_pos, "children complete before the parent");
}

/// Metrics accumulate across worker threads: a characterization forced to
/// `RLCX_THREADS=4` must count every grid point and every PEEC solve, and
/// the solve counter grows by at least the point count.
#[test]
fn metrics_accumulate_across_threads() {
    let _guard = level_lock();
    std::env::set_var("RLCX_THREADS", "4");
    let solves_before = obs::counter_value("peec.solves");
    let self_points_before = obs::counter_value("table.points.self");
    small_builder().build().unwrap();
    std::env::remove_var("RLCX_THREADS");

    // 2 widths × 2 lengths self points; every point is one PEEC solve and
    // the mutual/loop sweeps add more.
    assert!(
        obs::counter_value("table.points.self") >= self_points_before + 4,
        "self grid points counted"
    );
    assert!(
        obs::counter_value("peec.solves") >= solves_before + 4,
        "solver invocations counted across worker threads"
    );
    match obs::metric_value("threads.used") {
        Some(obs::MetricValue::Gauge(t)) => assert!(t >= 1.0),
        other => panic!("threads.used gauge missing: {other:?}"),
    }
    // The spline self-check gauge is published at every build and must be
    // tiny: interpolating splines reproduce their knots to round-off.
    match obs::metric_value("spline.max_resid") {
        Some(obs::MetricValue::Gauge(r)) => assert!(r < 1e-9, "knot residual {r}"),
        other => panic!("spline.max_resid gauge missing: {other:?}"),
    }
}

/// A report built from a real run (figures + timings + metrics + spans)
/// survives the JSON round-trip losslessly.
#[test]
fn run_report_round_trips_through_json() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    let (_, timings) = small_builder().build_timed().unwrap();
    obs::set_trace_level(TraceLevel::Off);

    let mut report = RunReport::new("observability_test");
    report.figure("self_l.max_rel_err", 0.0123);
    report.sample("lookup", 1.5e-6, 1.1e-6, 10);
    report.absorb_timings(&timings);
    report.finish();
    assert!(!report.metrics.is_empty(), "metric snapshot captured");
    assert!(
        report.spans.iter().any(|s| s.path == "table.build"),
        "span summary captured"
    );

    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.figure_value("self_l.max_rel_err"), Some(0.0123));
    let build = parsed.spans.iter().find(|s| s.path == "table.build");
    assert!(build.is_some_and(|s| s.count >= 1 && s.total_s > 0.0));
}

/// A PRIMA reduction publishes its macromodel health metrics: the
/// reduced-order and unstable-pole gauges and the Arnoldi deflation
/// counter (which must at least exist afterwards, deflated or not).
#[test]
fn reduction_publishes_mor_metrics() {
    use rlcx::spice::reduce::{Reduce, ReductionOrder};
    use rlcx::spice::{Netlist, Waveform, GROUND};

    let mut nl = Netlist::new();
    let inp = nl.node("in");
    nl.vsource("Vin", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 10e-12))
        .unwrap();
    let mut prev = inp;
    for i in 0..6 {
        let out = nl.node(format!("n{i}"));
        nl.resistor(&format!("R{i}"), prev, out, 10.0).unwrap();
        nl.capacitor(&format!("C{i}"), out, GROUND, 10e-15).unwrap();
        prev = out;
    }
    let deflations_before = obs::counter_value("mor.arnoldi.deflations");
    let model = Reduce::new(&nl)
        .order(ReductionOrder::new(5))
        .output("n5")
        .run()
        .unwrap();
    match obs::metric_value("mor.order") {
        Some(m) => assert_eq!(m.as_f64(), model.order() as f64),
        None => panic!("mor.order gauge missing"),
    }
    match obs::metric_value("mor.poles.unstable") {
        Some(m) => assert_eq!(m.as_f64(), 0.0),
        None => panic!("mor.poles.unstable gauge missing"),
    }
    assert!(
        obs::counter_value("mor.arnoldi.deflations")
            >= deflations_before + model.deflations() as u64,
        "deflation counter did not accumulate"
    );
}
