//! The observability layer tested through the public facade: span nesting
//! across real extraction work, metric accumulation under multi-threaded
//! characterization, and run-report JSON round-trips.
//!
//! Trace level and metrics are process-global; tests that flip the level
//! serialize through [`level_lock`], and all metric assertions are deltas
//! against a before-snapshot so concurrently running tests cannot break
//! them.

use rlcx::core::TableBuilder;
use rlcx::geom::Stackup;
use rlcx::obs::{self, RunReport, TraceLevel};
use rlcx::peec::MeshSpec;
use std::sync::{Mutex, MutexGuard};

fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_builder() -> TableBuilder {
    TableBuilder::new(Stackup::hp_six_metal_copper(), 5)
        .unwrap()
        .widths(vec![2.0, 5.0])
        .spacings(vec![0.5, 1.0])
        .lengths(vec![200.0, 400.0])
        .mesh(MeshSpec::new(2, 1))
}

/// A table build under `Summary` records the characterization span tree
/// with correct nesting: `table.build` as the root, the per-stage spans
/// below it, and the PEEC solve spans below those (on worker threads the
/// solver spans are thread-local roots, so only depth-0 paths are
/// guaranteed for them).
#[test]
fn table_build_records_nested_spans() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    small_builder().build().unwrap();
    obs::set_trace_level(TraceLevel::Off);
    let spans = obs::take_spans();

    let build = spans
        .iter()
        .find(|s| s.path == "table.build")
        .expect("root span recorded");
    assert_eq!(build.depth, 0);
    for stage in ["table.self", "table.mutual", "table.loop"] {
        let path = format!("table.build/{stage}");
        let s = spans
            .iter()
            .find(|s| s.path == path)
            .unwrap_or_else(|| panic!("stage span {path} recorded"));
        assert_eq!(s.depth, 1);
        assert!(s.duration <= build.duration, "{path} within the root span");
    }
    // The PEEC solves run inside the stages (possibly on worker threads).
    assert!(
        spans.iter().any(|s| s.path.ends_with("peec.solve")),
        "solver spans recorded"
    );
    // Span ordering: completion order puts children before their parent.
    let build_pos = spans.iter().position(|s| s.path == "table.build").unwrap();
    let self_pos = spans
        .iter()
        .position(|s| s.path == "table.build/table.self")
        .unwrap();
    assert!(self_pos < build_pos, "children complete before the parent");
}

/// Metrics accumulate across worker threads: a characterization forced to
/// `RLCX_THREADS=4` must count every grid point and every PEEC solve, and
/// the solve counter grows by at least the point count.
#[test]
fn metrics_accumulate_across_threads() {
    let _guard = level_lock();
    std::env::set_var("RLCX_THREADS", "4");
    let solves_before = obs::counter_value("peec.solves");
    let self_points_before = obs::counter_value("table.points.self");
    small_builder().build().unwrap();
    std::env::remove_var("RLCX_THREADS");

    // 2 widths × 2 lengths self points; every point is one PEEC solve and
    // the mutual/loop sweeps add more.
    assert!(
        obs::counter_value("table.points.self") >= self_points_before + 4,
        "self grid points counted"
    );
    assert!(
        obs::counter_value("peec.solves") >= solves_before + 4,
        "solver invocations counted across worker threads"
    );
    match obs::metric_value("threads.used") {
        Some(obs::MetricValue::Gauge(t)) => assert!(t >= 1.0),
        other => panic!("threads.used gauge missing: {other:?}"),
    }
    // The spline self-check gauge is published at every build and must be
    // tiny: interpolating splines reproduce their knots to round-off.
    match obs::metric_value("spline.max_resid") {
        Some(obs::MetricValue::Gauge(r)) => assert!(r < 1e-9, "knot residual {r}"),
        other => panic!("spline.max_resid gauge missing: {other:?}"),
    }
}

/// A report built from a real run (figures + timings + metrics + spans)
/// survives the JSON round-trip losslessly.
#[test]
fn run_report_round_trips_through_json() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    let (_, timings) = small_builder().build_timed().unwrap();
    obs::set_trace_level(TraceLevel::Off);

    let mut report = RunReport::new("observability_test");
    report.figure("self_l.max_rel_err", 0.0123);
    report.sample("lookup", 1.5e-6, 1.1e-6, 10);
    report.absorb_timings(&timings);
    report.finish();
    assert!(!report.metrics.is_empty(), "metric snapshot captured");
    assert!(
        report.spans.iter().any(|s| s.path == "table.build"),
        "span summary captured"
    );

    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.figure_value("self_l.max_rel_err"), Some(0.0123));
    let build = parsed.spans.iter().find(|s| s.path == "table.build");
    assert!(build.is_some_and(|s| s.count >= 1 && s.total_s > 0.0));
}

/// The flight recorder through the facade: an adaptive transient run must
/// leave `(t, h)`, `(t, lte)` and accept/reject traces in the series
/// channels, and a sparse factorization must leave a fill-per-column
/// trace — the RunReport v2 payload for every CI-gated experiment.
#[test]
fn adaptive_run_records_series_channels() {
    use rlcx::spice::{
        AdaptiveOptions, Netlist, SolverEngine, Stepping, Transient, Waveform, GROUND,
    };

    // Serialized via level_lock: this test calls `finish()`, which honors
    // RLCX_TRACE_OUT — the env-driven export test must not interleave.
    let _guard = level_lock();
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    nl.vsource("V", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 20e-12))
        .unwrap();
    let mut prev = inp;
    for i in 0..20 {
        let mid = nl.node(format!("m{i}"));
        let out = nl.node(format!("n{i}"));
        nl.resistor(&format!("R{i}"), prev, mid, 10.0).unwrap();
        nl.inductor(&format!("L{i}"), mid, out, 0.5e-9).unwrap();
        nl.capacitor(&format!("C{i}"), out, GROUND, 20e-15).unwrap();
        prev = out;
    }
    let pushed_before = |name: &str| {
        obs::series_snapshot()
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.pushed)
    };
    let (h0, lte0, acc0, fill0) = (
        pushed_before("transient.h"),
        pushed_before("transient.lte"),
        pushed_before("transient.accept"),
        pushed_before("sparse.lu.colfill"),
    );
    let res = Transient::new(&nl)
        .engine(SolverEngine::Sparse)
        .timestep(1e-12)
        .duration(300e-12)
        .stepping(Stepping::Adaptive(AdaptiveOptions::default()))
        .run()
        .unwrap();
    let accepted = res.steps_accepted() as u64;
    assert!(accepted > 0);

    let snap = obs::series_snapshot();
    let channel = |name: &str| {
        snap.iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("channel {name} missing"))
    };
    assert!(channel("transient.h").pushed >= h0 + accepted);
    assert!(channel("transient.lte").pushed >= lte0 + accepted);
    assert!(channel("transient.accept").pushed >= acc0 + accepted);
    assert!(
        channel("sparse.lu.colfill").pushed > fill0,
        "sparse factorization must trace its fill"
    );
    // Step sizes are positive and time is monotone over the retained tail.
    let h = channel("transient.h");
    assert!(h.points.iter().all(|&(_, hv)| hv > 0.0));
    assert!(h.points.windows(2).all(|w| w[0].0 <= w[1].0));
    // Accept/reject is a 0/1 channel.
    assert!(channel("transient.accept")
        .points
        .iter()
        .all(|&(_, v)| v == 0.0 || v == 1.0));

    // The channels land in a v2 report and survive the round-trip.
    let mut report = RunReport::new("observability_series_test");
    report.finish();
    assert!(report.series.iter().any(|s| s.name == "transient.h"));
    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed.series, report.series);
}

/// `write_chrome_trace` output is valid Chrome `traceEvents` JSON: re-parse
/// the file and replay every thread track, asserting non-decreasing
/// timestamps and strictly matched, properly nested B/E pairs.
#[test]
fn chrome_trace_export_is_valid_and_nested() {
    let _guard = level_lock();
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    // Real nested work on the main thread plus a worker-thread span.
    {
        let _outer = obs::span("chrome.test.outer");
        {
            let _inner = obs::span("chrome.test.inner");
            let _leaf = obs::span("chrome.test.leaf");
        }
        let _sibling = obs::span("chrome.test.sibling");
    }
    std::thread::spawn(|| {
        let _w = obs::span("chrome.test.worker");
    })
    .join()
    .unwrap();
    obs::set_trace_level(TraceLevel::Off);
    let spans = obs::take_spans();
    assert!(spans.len() >= 5, "all test spans recorded");

    let path = std::env::temp_dir().join(format!("rlcx_chrome_{}.json", std::process::id()));
    obs::write_chrome_trace(
        &path,
        &spans,
        &[("demo.count".into(), obs::MetricValue::Counter(2))],
    )
    .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let doc = obs::Json::parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(obs::Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut tids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(obs::Json::as_u64))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 2, "main + worker thread tracks");

    let mut b_seen = 0usize;
    for tid in tids {
        let mut last_ts = f64::NEG_INFINITY;
        let mut stack: Vec<String> = Vec::new();
        for e in events {
            if e.get("tid").and_then(obs::Json::as_u64) != Some(tid) {
                continue;
            }
            let ph = e.get("ph").and_then(obs::Json::as_str).expect("ph");
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").and_then(obs::Json::as_f64).expect("ts");
            assert!(ts >= last_ts, "timestamps non-decreasing per tid");
            last_ts = ts;
            let name = e.get("name").and_then(obs::Json::as_str).expect("name");
            match ph {
                "B" => {
                    b_seen += 1;
                    stack.push(name.to_string());
                }
                "E" => {
                    assert_eq!(
                        stack.pop().as_deref(),
                        Some(name),
                        "E must close the innermost open B"
                    );
                }
                "C" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stack.is_empty(), "every B on tid {tid} closed by an E");
    }
    assert!(b_seen >= 5, "every span became a B/E pair");
    // The counter track made it in.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(obs::Json::as_str) == Some("C")
            && e.get("name").and_then(obs::Json::as_str) == Some("demo.count")
    }));
}

/// `RLCX_TRACE_OUT` is honored end-to-end by `RunReport::finish`.
#[test]
fn finish_exports_chrome_trace_when_env_is_set() {
    let _guard = level_lock();
    let path = std::env::temp_dir().join(format!("rlcx_finish_trace_{}.json", std::process::id()));
    std::env::set_var("RLCX_TRACE_OUT", &path);
    obs::set_trace_level(TraceLevel::Summary);
    obs::take_spans();
    {
        let _s = obs::span("chrome.finish.test");
    }
    obs::set_trace_level(TraceLevel::Off);
    let mut report = RunReport::new("finish_trace_test");
    report.finish();
    std::env::remove_var("RLCX_TRACE_OUT");

    let text = std::fs::read_to_string(&path).expect("finish wrote the chrome trace");
    std::fs::remove_file(&path).ok();
    let doc = obs::Json::parse(&text).unwrap();
    assert!(doc
        .get("traceEvents")
        .and_then(obs::Json::as_array)
        .is_some_and(|events| events
            .iter()
            .any(|e| e.get("name").and_then(obs::Json::as_str) == Some("chrome.finish.test"))));
}

/// The persistent worker pool (PR 10) publishes its dispatch metrics:
/// the task counter, the per-dispatch queue-depth histogram, the
/// steal/idle worker counters and the claimant-width gauge — the same
/// plumbing the fast-operator build and matvec paths dispatch through.
#[test]
fn pool_dispatches_publish_metrics() {
    use rlcx::numeric::{par_map, pool, with_thread_count};
    use std::time::Duration;

    let _guard = level_lock();
    let tasks_before = obs::counter_value("pool.tasks");
    let steal_before = obs::counter_value("pool.steal");

    // Sleeping tasks hold the job open long enough that the woken pool
    // workers provably claim a share; retry a few dispatches in case the
    // scheduler lets the caller drain an entire job alone.
    let mut rounds = 0u64;
    loop {
        pool::run(64, 4, |_| std::thread::sleep(Duration::from_millis(1)));
        rounds += 1;
        if obs::counter_value("pool.steal") > steal_before || rounds >= 50 {
            break;
        }
    }
    assert!(
        obs::counter_value("pool.tasks") >= tasks_before + 64 * rounds,
        "every dispatched task index is counted"
    );
    assert!(
        obs::counter_value("pool.steal") > steal_before,
        "pool workers claimed a share of the sleeping tasks"
    );
    assert!(
        obs::metric_value("pool.idle").is_some(),
        "idle counter registered at worker spawn"
    );
    match obs::metric_value("pool.queue.depth") {
        Some(obs::MetricValue::Histogram { count, max, .. }) => {
            assert!(max >= 64.0, "queue depth saw the 64-task dispatches");
            assert!(count >= rounds, "one depth sample per dispatch");
        }
        other => panic!("pool.queue.depth histogram missing: {other:?}"),
    }

    // The parallel map dispatches through the same pool and stamps the
    // claimant width on the shared gauge.
    with_thread_count(3, || {
        let out = par_map(128, |i| i * i);
        assert_eq!(out[127], 127 * 127);
    });
    match obs::metric_value("threads.used") {
        Some(obs::MetricValue::Gauge(t)) => assert_eq!(t, 3.0),
        other => panic!("threads.used gauge missing: {other:?}"),
    }
}

/// A PRIMA reduction publishes its macromodel health metrics: the
/// reduced-order and unstable-pole gauges and the Arnoldi deflation
/// counter (which must at least exist afterwards, deflated or not).
#[test]
fn reduction_publishes_mor_metrics() {
    use rlcx::spice::reduce::{Reduce, ReductionOrder};
    use rlcx::spice::{Netlist, Waveform, GROUND};

    let mut nl = Netlist::new();
    let inp = nl.node("in");
    nl.vsource("Vin", inp, GROUND, Waveform::ramp(0.0, 1.0, 0.0, 10e-12))
        .unwrap();
    let mut prev = inp;
    for i in 0..6 {
        let out = nl.node(format!("n{i}"));
        nl.resistor(&format!("R{i}"), prev, out, 10.0).unwrap();
        nl.capacitor(&format!("C{i}"), out, GROUND, 10e-15).unwrap();
        prev = out;
    }
    let deflations_before = obs::counter_value("mor.arnoldi.deflations");
    let model = Reduce::new(&nl)
        .order(ReductionOrder::new(5))
        .output("n5")
        .run()
        .unwrap();
    match obs::metric_value("mor.order") {
        Some(m) => assert_eq!(m.as_f64(), model.order() as f64),
        None => panic!("mor.order gauge missing"),
    }
    match obs::metric_value("mor.poles.unstable") {
        Some(m) => assert_eq!(m.as_f64(), 0.0),
        None => panic!("mor.poles.unstable gauge missing"),
    }
    assert!(
        obs::counter_value("mor.arnoldi.deflations")
            >= deflations_before + model.deflations() as u64,
        "deflation counter did not accumulate"
    );
}
