//! Thread-count invariance of the parallel fast-PEEC path: building the
//! hierarchical operator, applying it and reducing it to conductor
//! admittances must be **bit-identical** at every thread count. The
//! worker pool shards all fast-operator work by block/cluster/shard index
//! and reduces partial results in a fixed order, so `RLCX_THREADS` may
//! only change wall-clock time — never a single output bit. These
//! properties drive the in-process override (`with_thread_count`) across
//! seeded random geometries from the three fixture families the backend
//! equivalence suite uses.

use rlcx::geom::units::RHO_COPPER;
use rlcx::geom::{Axis, Bar, Point3};
use rlcx::numeric::rng::{SplitMix64, UniformRng};
use rlcx::numeric::{with_thread_count, Complex, LinearOperator};
use rlcx::peec::fastop::{
    conductor_admittance, BlockDiagPrecond, FastOpOptions, FastZOperator, KernelCache,
};
use rlcx::peec::MeshSpec;

/// Thread counts the properties sweep: serial, even, and an odd count
/// that exercises ragged index sharding.
const THREADS: [usize; 3] = [1, 2, 7];

/// A meshed fixture: filaments, resistivities, per-filament conductor
/// owner and the shared axial length.
struct Fixture {
    fils: Vec<Bar>,
    rhos: Vec<f64>,
    owner: Vec<usize>,
    n_cond: usize,
    length: f64,
}

fn mesh_bars(bars: Vec<Bar>, mesh: MeshSpec, length: f64) -> Fixture {
    let mut fils = Vec::new();
    let mut owner = Vec::new();
    let n_cond = bars.len();
    for (ci, bar) in bars.iter().enumerate() {
        let fs = mesh.filaments(bar);
        owner.resize(owner.len() + fs.len(), ci);
        fils.extend(fs);
    }
    let rhos = vec![RHO_COPPER; fils.len()];
    Fixture {
        fils,
        rhos,
        owner,
        n_cond,
        length,
    }
}

/// A random coplanar bus: parallel traces with random widths and gaps.
fn random_cpw(rng: &mut SplitMix64, n: usize, mesh: MeshSpec) -> Fixture {
    let len = rng.uniform(300.0, 2500.0);
    let t = rng.uniform(1.0, 3.0);
    let mut y = 0.0;
    let bars = (0..n)
        .map(|_| {
            let w = rng.uniform(1.0, 12.0);
            let bar = Bar::new(Point3::new(0.0, y, 10.0), Axis::X, len, w, t).unwrap();
            y += w + rng.uniform(0.6, 8.0);
            bar
        })
        .collect();
    mesh_bars(bars, mesh, len)
}

/// A random microstrip: one signal trace over a wide return plane.
fn random_microstrip(rng: &mut SplitMix64, mesh: MeshSpec) -> Fixture {
    let len = rng.uniform(300.0, 2500.0);
    let t = rng.uniform(1.0, 3.0);
    let w = rng.uniform(2.0, 12.0);
    let h = rng.uniform(2.0, 6.0);
    let plane_w = rng.uniform(30.0, 80.0);
    let sig = Bar::new(
        Point3::new(0.0, 0.5 * (plane_w - w), 8.0 + h),
        Axis::X,
        len,
        w,
        t,
    )
    .unwrap();
    let plane = Bar::new(Point3::new(0.0, 0.0, 8.0 - t), Axis::X, len, plane_w, t).unwrap();
    mesh_bars(vec![sig, plane], mesh, len)
}

/// A random plane-strip system: well-separated strips over one plane —
/// the geometry class where the H² far field engages.
fn random_plane_strips(rng: &mut SplitMix64, n_strips: usize, mesh: MeshSpec) -> Fixture {
    let len = rng.uniform(300.0, 2000.0);
    let t = rng.uniform(0.8, 2.0);
    let h = rng.uniform(2.0, 5.0);
    let plane_w = rng.uniform(60.0, 120.0);
    let mut bars =
        vec![Bar::new(Point3::new(0.0, 0.0, 8.0 - t), Axis::X, len, plane_w, t).unwrap()];
    let mut y = rng.uniform(2.0, 6.0);
    for _ in 0..n_strips {
        let w = rng.uniform(1.0, 6.0);
        bars.push(Bar::new(Point3::new(0.0, y, 8.0 + h), Axis::X, len, w, t).unwrap());
        y += w + rng.uniform(8.0, 20.0);
    }
    mesh_bars(bars, mesh, len)
}

/// A deterministic dense excitation.
fn excitation(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
        .collect()
}

/// Builds the operator, applies it once, and reduces to the conductor
/// admittance matrix — the full matrix-free pipeline — at `threads`.
/// Returns the matvec output and the admittance entries.
fn pipeline_at(fx: &Fixture, omega: f64, threads: usize) -> (Vec<Complex>, Vec<Complex>) {
    with_thread_count(threads, || {
        let kernel = KernelCache::new(fx.length);
        let op = FastZOperator::new(
            &fx.fils,
            &fx.rhos,
            omega,
            &kernel,
            &FastOpOptions::default(),
        );
        let x = excitation(fx.fils.len());
        let mut y = vec![Complex::ZERO; fx.fils.len()];
        op.apply(&x, &mut y);
        let pre = BlockDiagPrecond::new(&fx.fils, &fx.rhos, &fx.owner, fx.n_cond, omega, &kernel)
            .expect("preconditioner");
        let yc = conductor_admittance(&op, &pre, &fx.owner, fx.n_cond).expect("admittance");
        let mut flat = Vec::with_capacity(fx.n_cond * fx.n_cond);
        for i in 0..fx.n_cond {
            for j in 0..fx.n_cond {
                flat.push(yc[(i, j)]);
            }
        }
        (y, flat)
    })
}

fn assert_bits_equal(label: &str, threads: usize, a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len());
    for (k, (va, vb)) in a.iter().zip(b).enumerate() {
        assert!(
            va.re.to_bits() == vb.re.to_bits() && va.im.to_bits() == vb.im.to_bits(),
            "{label}[{k}] differs at {threads} threads: {va:?} vs {vb:?}"
        );
    }
}

/// Runs the full pipeline at every thread count and demands bit equality
/// with the single-threaded reference.
fn check_fixture(name: &str, fx: &Fixture, omega: f64) {
    let (y1, yc1) = pipeline_at(fx, omega, THREADS[0]);
    for &t in &THREADS[1..] {
        let (yt, yct) = pipeline_at(fx, omega, t);
        assert_bits_equal(&format!("{name}: matvec"), t, &y1, &yt);
        assert_bits_equal(&format!("{name}: admittance"), t, &yc1, &yct);
    }
}

#[test]
fn parallel_pipeline_is_bit_identical_on_random_cpw_buses() {
    let mut rng = SplitMix64::new(0x9A11_C0DE);
    for round in 0..3 {
        let n = 2 + (rng.next_u64() % 3) as usize;
        let fx = random_cpw(&mut rng, n, MeshSpec::new(6, 4));
        let omega = 2.0 * std::f64::consts::PI * rng.uniform(5e8, 8e9);
        check_fixture(&format!("cpw round {round}"), &fx, omega);
    }
}

#[test]
fn parallel_pipeline_is_bit_identical_on_random_microstrips() {
    let mut rng = SplitMix64::new(0x0515_BEEF);
    for round in 0..3 {
        let fx = random_microstrip(&mut rng, MeshSpec::new(6, 4));
        let omega = 2.0 * std::f64::consts::PI * rng.uniform(5e8, 8e9);
        check_fixture(&format!("microstrip round {round}"), &fx, omega);
    }
}

#[test]
fn parallel_pipeline_is_bit_identical_on_random_plane_strips() {
    let mut rng = SplitMix64::new(0x0F1A_757A);
    for round in 0..2 {
        let n = 2 + (rng.next_u64() % 2) as usize;
        let fx = random_plane_strips(&mut rng, n, MeshSpec::new(6, 4));
        let omega = 2.0 * std::f64::consts::PI * rng.uniform(5e8, 8e9);
        check_fixture(&format!("plane-strips round {round}"), &fx, omega);
    }
}

#[test]
fn flat_aca_compression_is_thread_invariant_too() {
    // The flat-ACA far field shares the sharded build/apply machinery; it
    // must be just as thread-invariant as the default H² path.
    let mut rng = SplitMix64::new(0xACA_ACA);
    let fx = random_plane_strips(&mut rng, 3, MeshSpec::new(6, 4));
    let omega = 2.0 * std::f64::consts::PI * 3.2e9;
    let run = |threads: usize| {
        with_thread_count(threads, || {
            let kernel = KernelCache::new(fx.length);
            let op = FastZOperator::new(
                &fx.fils,
                &fx.rhos,
                omega,
                &kernel,
                &FastOpOptions::flat_aca(),
            );
            let x = excitation(fx.fils.len());
            let mut y = vec![Complex::ZERO; fx.fils.len()];
            op.apply(&x, &mut y);
            y
        })
    };
    let y1 = run(1);
    for t in [2usize, 7] {
        assert_bits_equal("flat-aca matvec", t, &y1, &run(t));
    }
}
